"""Fault-tolerance tests: node failure, recovery, fault injection,
resilient fan-out (retries/hedges/breaker), graceful degradation and
web-tier balancing."""

import threading

import pytest

from repro.cluster import ClusterSimulation, MergeWork, Task, WebServerFarm
from repro.config import ClusterConfig, FaultsConfig, PlatformConfig
from repro.core.faults import FAULT_ERROR, FAULT_HANG, FaultInjector
from repro.core.modules.query_answering import QueryAnsweringModule, SearchQuery
from repro.core.monitoring import PlatformMetrics
from repro.core.repositories.poi import POI, POIRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.errors import (
    ConfigError,
    DegradedResultWarning,
    QueryDeadlineExceeded,
)
from repro.hbase import HBaseCluster
from repro.sqlstore import SqlEngine


def _result_fingerprint(result):
    """Everything a caller can observe about a SearchResult."""
    return (
        [(p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
         for p in result.pois],
        result.personalized,
        result.latency_ms,
        result.records_scanned,
        result.regions_used,
        result.regions_pruned,
        result.cells_decoded,
        result.degraded,
        result.missing_regions,
        result.coverage,
    )


def _build_qa(num_nodes=4, regions=8, users=40):
    """A small query stack over a real fan-out cluster."""
    cluster = HBaseCluster(
        ClusterConfig(num_nodes=num_nodes, regions_per_table=regions)
    )
    pois = POIRepository(SqlEngine())
    pois.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                 keywords=("x",), category="cafe"))
    visits = VisitsRepository(cluster, num_regions=regions)
    for uid in range(1, users):
        visits.store(VisitStruct(user_id=uid, poi_id=1, timestamp=uid,
                                 grade=0.5, poi_name="A",
                                 lat=37.98, lon=23.73, keywords=("x",)))
    qa = QueryAnsweringModule(pois, visits)
    query = SearchQuery(friend_ids=tuple(range(1, users)), sort_by="hotness")
    return cluster, qa, query


class TestNodeFailure:
    def _sim(self, nodes=4, regions=8):
        sim = ClusterSimulation(ClusterConfig(num_nodes=nodes))
        sim.place_regions(list(range(regions)))
        return sim

    def test_failed_nodes_regions_move(self):
        sim = self._sim()
        owned = [r for r, n in sim.region_placement.items() if n == 0]
        moved = sim.fail_node(0)
        assert moved == sorted(owned)
        for region, node in sim.region_placement.items():
            assert node != 0
        assert sim.live_node_count == 3

    def test_double_failure_is_noop(self):
        sim = self._sim()
        sim.fail_node(0)
        assert sim.fail_node(0) == []

    def test_cannot_fail_last_node(self):
        sim = self._sim(nodes=2)
        sim.fail_node(0)
        with pytest.raises(ConfigError):
            sim.fail_node(1)

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigError):
            self._sim().fail_node(99)

    def test_latency_degrades_then_recovers(self):
        sim = self._sim(nodes=4, regions=16)
        tasks = [Task(region_id=r, records_scanned=5000) for r in range(16)]
        healthy = sim.run_query(tasks).latency_s
        sim.fail_node(0)
        sim.fail_node(1)
        degraded = sim.run_query(tasks).latency_s
        assert degraded > healthy
        sim.recover_node(0)
        sim.recover_node(1)
        recovered = sim.run_query(tasks).latency_s
        assert recovered == pytest.approx(healthy, rel=0.01)

    def test_placement_only_on_live_nodes_after_replace(self):
        sim = self._sim()
        sim.fail_node(2)
        placement = sim.place_regions(list(range(12)))
        assert 2 not in placement.values()


class TestQueryCorrectnessUnderFailure:
    def test_personalized_query_exact_after_node_loss(self):
        cluster = HBaseCluster(ClusterConfig(num_nodes=4, regions_per_table=8))
        pois = POIRepository(SqlEngine())
        pois.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                     keywords=("x",), category="cafe"))
        visits = VisitsRepository(cluster, num_regions=8)
        for uid in range(1, 20):
            visits.store(VisitStruct(user_id=uid, poi_id=1, timestamp=uid,
                                     grade=0.5, poi_name="A",
                                     lat=37.98, lon=23.73, keywords=("x",)))
        qa = QueryAnsweringModule(pois, visits)
        query = SearchQuery(friend_ids=tuple(range(1, 20)), sort_by="hotness")

        before = qa.search(query)
        cluster.fail_node(0)
        after = qa.search(query)
        # Identical answers, degraded latency.
        assert [p.poi_id for p in after.pois] == [p.poi_id for p in before.pois]
        assert after.pois[0].visit_count == 19
        assert after.latency_ms > before.latency_ms
        cluster.shutdown()


class TestFaultInjectorDeterminism:
    def _decision_trace(self, seed, epochs=6, regions=8, attempts=3):
        injector = FaultInjector(FaultsConfig(
            enabled=True, seed=seed,
            region_error_rate=0.3, region_hang_rate=0.2, corrupt_rate=0.1,
        ))
        trace = []
        for _ in range(epochs):
            injector.on_fanout_start(None)
            for region in range(regions):
                for attempt in range(attempts):
                    fault = injector.decide(region, region % 4, attempt)
                    trace.append(None if fault is None else fault.kind)
        return trace

    def test_same_seed_same_decisions(self):
        assert self._decision_trace(7) == self._decision_trace(7)

    def test_different_seed_different_decisions(self):
        assert self._decision_trace(7) != self._decision_trace(8)

    def test_decisions_independent_of_call_order(self):
        """Thread interleaving must not perturb outcomes: querying the
        same (epoch, region, attempt) in any order gives the same fault."""
        a = FaultInjector(FaultsConfig(enabled=True, seed=3,
                                       region_error_rate=0.5))
        b = FaultInjector(FaultsConfig(enabled=True, seed=3,
                                       region_error_rate=0.5))
        a.on_fanout_start(None)
        b.on_fanout_start(None)
        keys = [(r, 0) for r in range(16)]
        forward = {k: a.decide(k[0], 0, k[1]) for k in keys}
        backward = {k: b.decide(k[0], 0, k[1]) for k in reversed(keys)}
        assert {k: v and v.kind for k, v in forward.items()} == \
               {k: v and v.kind for k, v in backward.items()}

    def test_break_region_is_one_shot(self):
        injector = FaultInjector(FaultsConfig(enabled=True))
        injector.break_region(5, times=2)
        assert injector.decide(5, 0, 0).kind == FAULT_ERROR
        assert injector.decide(5, 0, 1).kind == FAULT_ERROR
        assert injector.decide(5, 0, 2) is None
        assert injector.decide(6, 0, 0) is None

    def test_jitter_is_deterministic_and_bounded(self):
        cfg = FaultsConfig(enabled=True, seed=11, retry_jitter_ms=2.0)
        a, b = FaultInjector(cfg), FaultInjector(cfg)
        for region in range(8):
            ja = a.backoff_jitter_ms(region, 1)
            assert ja == b.backoff_jitter_ms(region, 1)
            assert 0.0 <= ja <= 2.0

    def test_schedule_validation(self):
        injector = FaultInjector(FaultsConfig(enabled=True))
        with pytest.raises(ConfigError):
            injector.schedule_node_event(1, "explode", 0)
        injector.on_fanout_start(None)
        with pytest.raises(ConfigError):
            injector.schedule_node_event(1, "fail", 0)  # already past

    def test_hang_fault_carries_latency(self):
        injector = FaultInjector(FaultsConfig(
            enabled=True, region_hang_rate=1.0, hang_ms=123.0))
        injector.on_fanout_start(None)
        fault = injector.decide(0, 0, 0)
        assert fault.kind == FAULT_HANG and fault.latency_ms == 123.0


class TestResilientFanout:
    def test_zero_fault_results_byte_identical_interleaved(self):
        """Armed-but-quiet injector must change *nothing* observable:
        alternate injector-off / injector-on runs and compare everything
        (answers, simulated latency, counters)."""
        cluster, qa, query = _build_qa()
        try:
            injector = FaultInjector(FaultsConfig(enabled=True))
            fingerprints = []
            for round_no in range(3):
                cluster.attach_fault_injector(None)
                fingerprints.append(_result_fingerprint(qa.search(query)))
                cluster.attach_fault_injector(injector)
                fingerprints.append(_result_fingerprint(qa.search(query)))
            assert all(fp == fingerprints[0] for fp in fingerprints)
        finally:
            cluster.shutdown()

    def test_targeted_break_is_retried_transparently(self):
        cluster, qa, query = _build_qa()
        try:
            clean = qa.search(query)
            metrics = PlatformMetrics()
            cluster.attach_metrics(metrics)
            injector = FaultInjector(FaultsConfig(enabled=True))
            cluster.attach_fault_injector(injector)
            victim = next(iter(cluster.simulation.region_placement))
            injector.break_region(victim, times=1)
            result = qa.search(query)
            assert not result.degraded
            assert result.coverage == 1.0
            assert [p.poi_id for p in result.pois] == \
                   [p.poi_id for p in clean.pois]
            assert result.pois[0].visit_count == clean.pois[0].visit_count
            assert metrics.counter("fanout.retries") >= 1
            # The retried region's recovery work shows up in latency.
            assert result.latency_ms > clean.latency_ms
        finally:
            cluster.shutdown()

    def test_retry_exhaustion_falls_back_to_hedge(self):
        """Enough targeted errors to exhaust every primary attempt: the
        hedge on another node answers and the result stays exact."""
        cluster, qa, query = _build_qa()
        try:
            clean = qa.search(query)
            metrics = PlatformMetrics()
            cluster.attach_metrics(metrics)
            cfg = FaultsConfig(enabled=True, max_retries=2)
            injector = FaultInjector(cfg)
            cluster.attach_fault_injector(injector)
            victim = next(iter(cluster.simulation.region_placement))
            injector.break_region(victim, times=cfg.max_retries + 1)
            result = qa.search(query)
            assert not result.degraded
            assert [p.poi_id for p in result.pois] == \
                   [p.poi_id for p in clean.pois]
            assert metrics.counter("fanout.hedges") >= 1
        finally:
            cluster.shutdown()

    def test_total_failure_degrades_gracefully(self):
        cluster, qa, query = _build_qa()
        try:
            injector = FaultInjector(FaultsConfig(
                enabled=True, region_error_rate=1.0,
                max_retries=1, hedge_enabled=False,
            ))
            cluster.attach_fault_injector(injector)
            with pytest.warns(DegradedResultWarning):
                result = qa.search(query)
            assert result.degraded
            assert result.coverage == 0.0
            assert result.pois == []
            assert len(result.missing_regions) == result.regions_used
        finally:
            cluster.shutdown()

    def test_corrupt_partials_are_rejected_and_degrade(self):
        cluster, qa, query = _build_qa()
        try:
            injector = FaultInjector(FaultsConfig(
                enabled=True, corrupt_rate=1.0,
                max_retries=1, hedge_enabled=False,
            ))
            cluster.attach_fault_injector(injector)
            with pytest.warns(DegradedResultWarning):
                result = qa.search(query)
            assert result.degraded and result.pois == []
        finally:
            cluster.shutdown()

    def test_hangs_within_budget_still_answer_exactly(self):
        cluster, qa, query = _build_qa()
        try:
            clean = qa.search(query)
            injector = FaultInjector(FaultsConfig(
                enabled=True, region_hang_rate=1.0, hang_ms=5.0,
                query_deadline_ms=10_000.0,
            ))
            cluster.attach_fault_injector(injector)
            result = qa.search(query)
            assert not result.degraded
            assert [p.poi_id for p in result.pois] == \
                   [p.poi_id for p in clean.pois]
            # Stragglers answered, but the stall is on the clock.
            assert result.latency_ms > clean.latency_ms
        finally:
            cluster.shutdown()

    def test_strict_deadline_raises(self):
        cluster, qa, query = _build_qa()
        try:
            cluster.faults_config = FaultsConfig(
                enabled=True, query_deadline_ms=0.001, strict_deadline=True,
            )
            with pytest.raises(QueryDeadlineExceeded):
                qa.search(query)
        finally:
            cluster.shutdown()

    def test_explain_reports_degradation(self):
        cluster, qa, query = _build_qa()
        try:
            clean = qa.explain_personalized(query)
            assert clean["degraded"] is False
            assert clean["missing_regions"] == []
            assert clean["coverage"] == 1.0
            injector = FaultInjector(FaultsConfig(
                enabled=True, region_error_rate=1.0,
                max_retries=1, hedge_enabled=False,
            ))
            cluster.attach_fault_injector(injector)
            degraded = qa.explain_personalized(query)
            assert degraded["degraded"] is True
            assert degraded["missing_regions"]
            assert degraded["coverage"] == 0.0
        finally:
            cluster.shutdown()


class TestDegradedNodeFailure:
    def test_fail_recover_cycles_degrade_then_restore_exactly(self):
        """The acceptance loop: fail a node (with lost replicas), see a
        degraded-but-served answer, recover, see the exact answer again
        — for three cycles, without leaking executor threads."""
        cluster, qa, query = _build_qa()
        try:
            injector = FaultInjector(FaultsConfig(
                enabled=True, lost_region_fraction=0.5,
                stale_location_errors=0,
            ))
            cluster.attach_fault_injector(injector)
            baseline_threads = threading.active_count()
            clean = _result_fingerprint(qa.search(query))
            for cycle in range(3):
                cluster.fail_node(0)
                lost = injector.lost_regions()
                assert lost, "lost_region_fraction must sacrifice regions"
                with pytest.warns(DegradedResultWarning):
                    degraded = qa.search(query)
                assert degraded.degraded
                assert 0.0 < degraded.coverage < 1.0
                assert set(degraded.missing_regions) <= set(lost)
                cluster.recover_node(0)
                assert injector.lost_regions() == []
                restored = qa.search(query)
                assert _result_fingerprint(restored) == clean, (
                    "cycle %d: recovery must restore the exact answer"
                    % cycle
                )
            # One shared pool throughout: the thread count stays bounded
            # by its worker cap, however many fail/recover cycles ran.
            assert (
                threading.active_count()
                <= baseline_threads + cluster.config.total_cores
            )
        finally:
            cluster.shutdown()

    def test_stale_location_errors_recover_via_retry(self):
        """Node death without lost replicas: moved regions throw one
        stale-location error each, the retry path absorbs them and the
        answer stays exact."""
        cluster, qa, query = _build_qa()
        try:
            clean = qa.search(query)
            metrics = PlatformMetrics()
            cluster.attach_metrics(metrics)
            injector = FaultInjector(FaultsConfig(
                enabled=True, stale_location_errors=1,
                lost_region_fraction=0.0,
            ))
            cluster.attach_fault_injector(injector)
            moved = cluster.fail_node(0)
            assert moved
            result = qa.search(query)
            assert not result.degraded
            assert [p.poi_id for p in result.pois] == \
                   [p.poi_id for p in clean.pois]
            assert metrics.counter("fanout.retries") >= len(moved)
        finally:
            cluster.shutdown()

    def test_scheduled_node_events_fire_between_fanouts(self):
        cluster, qa, query = _build_qa()
        try:
            injector = FaultInjector(FaultsConfig(
                enabled=True, lost_region_fraction=0.0,
                stale_location_errors=0,
            ))
            cluster.attach_fault_injector(injector)
            injector.schedule_node_event(2, "fail", 1)
            injector.schedule_node_event(3, "recover", 1)
            qa.search(query)  # fan-out 1: nothing scheduled yet
            assert cluster.simulation.live_node_count == 4
            qa.search(query)  # fan-out 2: node 1 dies first
            assert cluster.simulation.live_node_count == 3
            qa.search(query)  # fan-out 3: node 1 comes back
            assert cluster.simulation.live_node_count == 4
            assert [(e[1], e[2]) for e in injector.events] == \
                   [("fail", 1), ("recover", 1)]
        finally:
            cluster.shutdown()

    def test_breaker_opens_on_repeated_node_errors(self):
        cluster, qa, query = _build_qa(num_nodes=2, regions=8)
        try:
            metrics = PlatformMetrics()
            cluster.attach_metrics(metrics)
            injector = FaultInjector(FaultsConfig(
                enabled=True, region_error_rate=1.0,
                max_retries=2, breaker_threshold=3, hedge_enabled=False,
            ))
            cluster.attach_fault_injector(injector)
            with pytest.warns(DegradedResultWarning):
                qa.search(query)
            states = cluster.breaker_states()
            assert any(s["open_until"] >= 0 for s in states.values())
            assert metrics.counter(
                "fanout.breaker_opened", labels={"node": 0}
            ) >= 1
        finally:
            cluster.shutdown()


class TestDegradedRestApi:
    def test_search_returns_200_envelope_with_degraded_flag(self):
        from repro import MoDisSENSE, RestApi

        # The platform owns several tables, and fail_node moves regions
        # of all of them; lose every moved replica so the visits table is
        # certainly hit.
        config = PlatformConfig(
            cluster=ClusterConfig(num_nodes=4, regions_per_table=8),
            faults=FaultsConfig(
                enabled=True, lost_region_fraction=1.0,
                stale_location_errors=0,
            ),
        )
        with MoDisSENSE(config) as platform:
            for uid in range(1, 30):
                platform.visits_repository.store(VisitStruct(
                    user_id=uid, poi_id=1, timestamp=uid, grade=0.5,
                    poi_name="A", lat=37.98, lon=23.73, keywords=("x",),
                ))
            rest = RestApi(platform)
            request = {"friend_ids": list(range(1, 30)),
                       "sort_by": "hotness"}

            before = rest.handle("search", request)
            assert before["status"] == "ok"
            assert before["data"]["degraded"] is False
            assert before["data"]["missing_regions"] == []
            assert before["data"]["coverage"] == 1.0

            platform.hbase.fail_node(0)
            with pytest.warns(DegradedResultWarning):
                after = rest.handle("search", request)
            # Partial results are still a 200, flagged for the client.
            assert after["status"] == "ok"
            assert after["data"]["degraded"] is True
            assert after["data"]["missing_regions"]
            assert 0.0 < after["data"]["coverage"] < 1.0
            assert platform.metrics.counter("queries.degraded") >= 1

            platform.hbase.recover_node(0)
            restored = rest.handle("search", request)
            assert restored["data"] == before["data"]


class TestSchedulerFailureIsolation:
    def _scheduler(self, metrics=None):
        from repro.core.scheduler import PeriodicScheduler

        return PeriodicScheduler(metrics=metrics)

    def test_failing_job_does_not_stop_others_or_itself(self):
        metrics = PlatformMetrics()
        scheduler = self._scheduler(metrics)
        fired = []

        def bad(now):
            raise RuntimeError("boom at %s" % now)

        scheduler.register("bad", 10.0, bad)
        scheduler.register("good", 10.0, fired.append)
        log = scheduler.advance_to(35.0)

        # Both jobs fired every period despite the failures.
        assert fired == [10.0, 20.0, 30.0]
        assert [entry[1] for entry in log].count("bad") == 3
        bad_job = scheduler.job("bad")
        assert bad_job.fire_count == 3
        assert bad_job.failure_count == 3
        assert bad_job.last_error.startswith("RuntimeError")
        assert bad_job.last_result is None
        assert metrics.counter(
            "scheduler.job_failures", labels={"job": "bad"}
        ) == 3
        assert metrics.counter(
            "scheduler.fired", labels={"job": "bad"}
        ) == 3

    def test_job_recovers_after_transient_failure(self):
        scheduler = self._scheduler()
        calls = []

        def flaky(now):
            calls.append(now)
            if len(calls) == 1:
                raise ValueError("transient")
            return now

        scheduler.register("flaky", 5.0, flaky)
        scheduler.advance_to(11.0)
        job = scheduler.job("flaky")
        assert job.failure_count == 1
        assert job.last_error is None  # cleared by the success
        assert job.last_result == 10.0


class TestWebServerFarm:
    def test_round_robin_spreads_load(self):
        farm = WebServerFarm(num_servers=2, cores_per_server=4)
        work = [MergeWork(query_id=i, items=100_000, ready_at=0.0)
                for i in range(8)]
        farm.schedule_merges(work)
        assert farm.utilization_spread() == pytest.approx(0.0, abs=1e-9)

    def test_more_servers_finish_sooner_under_load(self):
        def makespan(servers):
            farm = WebServerFarm(num_servers=servers, cores_per_server=4)
            work = [MergeWork(query_id=i, items=1_000_000, ready_at=0.0)
                    for i in range(40)]
            return max(farm.schedule_merges(work))
        assert makespan(2) < makespan(1)

    def test_saturation_point_matches_paper_claim(self):
        """Two 4-core servers are "more than enough": with a realistic
        per-query merge volume, going beyond 2 servers gains little."""
        def mean_finish(servers):
            farm = WebServerFarm(num_servers=servers, cores_per_server=4)
            # 50 concurrent queries x ~90k partial items each.
            work = [MergeWork(query_id=i, items=90_000, ready_at=0.0)
                    for i in range(50)]
            finishes = farm.schedule_merges(work)
            return sum(finishes) / len(finishes)
        one = mean_finish(1)
        two = mean_finish(2)
        four = mean_finish(4)
        assert two < one
        # Diminishing returns: 2 -> 4 servers gains far less than 1 -> 2.
        assert (two - four) < (one - two)

    def test_least_loaded_routing(self):
        farm = WebServerFarm(num_servers=2, cores_per_server=1,
                             routing="least_loaded")
        # A big job then small jobs: least-loaded sends smalls elsewhere.
        farm.schedule_merges([MergeWork(0, items=10_000_000, ready_at=0.0)])
        finishes = farm.schedule_merges(
            [MergeWork(1, items=100, ready_at=0.0)]
        )
        assert finishes[0] < 1.0  # did not queue behind the big job

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            WebServerFarm(num_servers=0)
        with pytest.raises(ConfigError):
            WebServerFarm(routing="random")

    def test_reset(self):
        farm = WebServerFarm(num_servers=1, cores_per_server=1)
        farm.schedule_merges([MergeWork(0, items=1_000_000, ready_at=0.0)])
        farm.reset()
        assert farm.servers[0].core_available_at == [0.0]

    def test_round_robin_cursor_wraps_instead_of_growing(self):
        """Regression: the balancer cursor used to grow without bound
        (``self._next_server += 1``); on a long-lived balancer that is a
        slow leak and an overflow in fixed-width implementations.  The
        cursor must stay inside ``[0, num_servers)`` forever and the
        rotation order must survive the wrap."""
        farm = WebServerFarm(num_servers=3, cores_per_server=1)
        routed = []
        for _ in range(3 * 7 + 2):
            routed.append(farm._route().node_id)
            assert 0 <= farm._next_server < len(farm.servers)
        assert routed == [i % 3 for i in range(len(routed))]
        # Wrap boundary specifically: after a full cycle the cursor is
        # back at 0, not at num_servers.
        farm.reset()
        for _ in range(3):
            farm._route()
        assert farm._next_server == 0

    def test_least_loaded_ties_break_to_lowest_index(self):
        """With all servers idle, least-loaded must be deterministic:
        the lowest-indexed server wins the tie every time."""
        farm = WebServerFarm(num_servers=3, cores_per_server=1,
                             routing="least_loaded")
        assert farm._route().node_id == 0
        # Occupy server 0's only core; the next tie (1 vs 2, both
        # idle) deterministically goes to 1.
        farm.schedule_merges([MergeWork(0, items=1_000_000, ready_at=0.0)])
        assert farm._route().node_id == 1


class TestCacheGoldenRegression:
    """Golden parity across the three execution modes: cache-off,
    cache-on, and cache-on with the PR-3 fault machinery exercising the
    path.  Faulted invocations run uncached by design, so no injector
    activity may ever pollute what later cache hits serve."""

    def _warm_stack(self):
        from repro.hbase import RegionScanCache

        cluster, qa, query = _build_qa()
        cache = RegionScanCache()
        return cluster, qa, query, cache

    def test_cache_on_off_answers_identical(self):
        cluster, qa, query, cache = self._warm_stack()
        try:
            off = qa.search(query)
            cluster.attach_scan_cache(cache)
            populate = qa.search(query)
            hit = qa.search(query)
            for result in (populate, hit):
                assert [
                    (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
                    for p in result.pois
                ] == [
                    (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
                    for p in off.pois
                ]
            assert populate.cache_misses > 0
            assert hit.cache_hits > 0 and hit.cache_misses == 0
            # The hit run did strictly less storage work.
            assert hit.records_scanned < populate.records_scanned
        finally:
            cluster.shutdown()

    def test_faulted_runs_never_pollute_the_cache(self):
        cluster, qa, query, cache = self._warm_stack()
        try:
            oracle = qa.search(query)  # clean, uncached baseline
            cluster.attach_scan_cache(cache)
            injector = FaultInjector(FaultsConfig(
                enabled=True, region_error_rate=1.0,
                max_retries=1, hedge_enabled=False,
            ))
            cluster.attach_fault_injector(injector)
            # Every invocation faults, every run fully degrades — and a
            # faulted invocation must neither populate nor consult the
            # cache, so the cache stays empty through the whole storm.
            import warnings as _warnings
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore", DegradedResultWarning)
                for _ in range(3):
                    stormy = qa.search(query)
                    assert stormy.degraded
                    assert stormy.cache_hits == 0
            assert len(cache) == 0  # faulted fan-outs bypass the cache
            # Disarm; the cached path must now match the clean oracle.
            cluster.attach_fault_injector(None)
            clean_on = qa.search(query)
            assert not clean_on.degraded
            assert [
                (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
                for p in clean_on.pois
            ] == [
                (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
                for p in oracle.pois
            ]
            # And a second pass serves hits that still agree.
            hit = qa.search(query)
            assert hit.cache_hits > 0
            assert [p.poi_id for p in hit.pois] == \
                   [p.poi_id for p in oracle.pois]
        finally:
            cluster.shutdown()

    def test_node_failure_with_cache_matches_oracle(self):
        cluster, qa, query, cache = self._warm_stack()
        try:
            cluster.attach_scan_cache(cache)
            qa.search(query)  # warm
            invalidations_before = cache.stats()["invalidations"]
            cluster.fail_node(0)
            # The failed node's regions moved; their entries must be gone.
            assert cache.stats()["invalidations"] > invalidations_before
            cached = qa.search(query)
            cluster.scan_cache = None
            oracle = qa.search(query)
            cluster.scan_cache = cache
            assert [
                (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
                for p in cached.pois
            ] == [
                (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
                for p in oracle.pois
            ]
        finally:
            cluster.shutdown()
