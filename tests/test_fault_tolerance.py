"""Fault-tolerance tests: node failure, recovery, web-tier balancing."""

import pytest

from repro.cluster import ClusterSimulation, MergeWork, Task, WebServerFarm
from repro.config import ClusterConfig
from repro.core.modules.query_answering import QueryAnsweringModule, SearchQuery
from repro.core.repositories.poi import POI, POIRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.errors import ConfigError
from repro.hbase import HBaseCluster
from repro.sqlstore import SqlEngine


class TestNodeFailure:
    def _sim(self, nodes=4, regions=8):
        sim = ClusterSimulation(ClusterConfig(num_nodes=nodes))
        sim.place_regions(list(range(regions)))
        return sim

    def test_failed_nodes_regions_move(self):
        sim = self._sim()
        owned = [r for r, n in sim.region_placement.items() if n == 0]
        moved = sim.fail_node(0)
        assert moved == sorted(owned)
        for region, node in sim.region_placement.items():
            assert node != 0
        assert sim.live_node_count == 3

    def test_double_failure_is_noop(self):
        sim = self._sim()
        sim.fail_node(0)
        assert sim.fail_node(0) == []

    def test_cannot_fail_last_node(self):
        sim = self._sim(nodes=2)
        sim.fail_node(0)
        with pytest.raises(ConfigError):
            sim.fail_node(1)

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigError):
            self._sim().fail_node(99)

    def test_latency_degrades_then_recovers(self):
        sim = self._sim(nodes=4, regions=16)
        tasks = [Task(region_id=r, records_scanned=5000) for r in range(16)]
        healthy = sim.run_query(tasks).latency_s
        sim.fail_node(0)
        sim.fail_node(1)
        degraded = sim.run_query(tasks).latency_s
        assert degraded > healthy
        sim.recover_node(0)
        sim.recover_node(1)
        recovered = sim.run_query(tasks).latency_s
        assert recovered == pytest.approx(healthy, rel=0.01)

    def test_placement_only_on_live_nodes_after_replace(self):
        sim = self._sim()
        sim.fail_node(2)
        placement = sim.place_regions(list(range(12)))
        assert 2 not in placement.values()


class TestQueryCorrectnessUnderFailure:
    def test_personalized_query_exact_after_node_loss(self):
        cluster = HBaseCluster(ClusterConfig(num_nodes=4, regions_per_table=8))
        pois = POIRepository(SqlEngine())
        pois.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                     keywords=("x",), category="cafe"))
        visits = VisitsRepository(cluster, num_regions=8)
        for uid in range(1, 20):
            visits.store(VisitStruct(user_id=uid, poi_id=1, timestamp=uid,
                                     grade=0.5, poi_name="A",
                                     lat=37.98, lon=23.73, keywords=("x",)))
        qa = QueryAnsweringModule(pois, visits)
        query = SearchQuery(friend_ids=tuple(range(1, 20)), sort_by="hotness")

        before = qa.search(query)
        cluster.fail_node(0)
        after = qa.search(query)
        # Identical answers, degraded latency.
        assert [p.poi_id for p in after.pois] == [p.poi_id for p in before.pois]
        assert after.pois[0].visit_count == 19
        assert after.latency_ms > before.latency_ms
        cluster.shutdown()


class TestWebServerFarm:
    def test_round_robin_spreads_load(self):
        farm = WebServerFarm(num_servers=2, cores_per_server=4)
        work = [MergeWork(query_id=i, items=100_000, ready_at=0.0)
                for i in range(8)]
        farm.schedule_merges(work)
        assert farm.utilization_spread() == pytest.approx(0.0, abs=1e-9)

    def test_more_servers_finish_sooner_under_load(self):
        def makespan(servers):
            farm = WebServerFarm(num_servers=servers, cores_per_server=4)
            work = [MergeWork(query_id=i, items=1_000_000, ready_at=0.0)
                    for i in range(40)]
            return max(farm.schedule_merges(work))
        assert makespan(2) < makespan(1)

    def test_saturation_point_matches_paper_claim(self):
        """Two 4-core servers are "more than enough": with a realistic
        per-query merge volume, going beyond 2 servers gains little."""
        def mean_finish(servers):
            farm = WebServerFarm(num_servers=servers, cores_per_server=4)
            # 50 concurrent queries x ~90k partial items each.
            work = [MergeWork(query_id=i, items=90_000, ready_at=0.0)
                    for i in range(50)]
            finishes = farm.schedule_merges(work)
            return sum(finishes) / len(finishes)
        one = mean_finish(1)
        two = mean_finish(2)
        four = mean_finish(4)
        assert two < one
        # Diminishing returns: 2 -> 4 servers gains far less than 1 -> 2.
        assert (two - four) < (one - two)

    def test_least_loaded_routing(self):
        farm = WebServerFarm(num_servers=2, cores_per_server=1,
                             routing="least_loaded")
        # A big job then small jobs: least-loaded sends smalls elsewhere.
        farm.schedule_merges([MergeWork(0, items=10_000_000, ready_at=0.0)])
        finishes = farm.schedule_merges(
            [MergeWork(1, items=100, ready_at=0.0)]
        )
        assert finishes[0] < 1.0  # did not queue behind the big job

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            WebServerFarm(num_servers=0)
        with pytest.raises(ConfigError):
            WebServerFarm(routing="random")

    def test_reset(self):
        farm = WebServerFarm(num_servers=1, cores_per_server=1)
        farm.schedule_merges([MergeWork(0, items=1_000_000, ready_at=0.0)])
        farm.reset()
        assert farm.servers[0].core_available_at == [0.0]
