"""Tests for the social substrate: graph, OAuth, simulated networks."""

import pytest

from repro.errors import AuthenticationError, PluginError, ValidationError
from repro.social import (
    CheckIn,
    FriendInfo,
    OAuthProvider,
    SimulatedNetwork,
    SocialGraph,
    StatusUpdate,
)


class TestSocialGraph:
    def test_friendship_is_symmetric(self):
        g = SocialGraph()
        g.add_friendship(1, 2)
        assert g.are_friends(1, 2)
        assert g.are_friends(2, 1)
        assert g.friends_of(1) == [2]

    def test_self_friendship_rejected(self):
        with pytest.raises(ValidationError):
            SocialGraph().add_friendship(1, 1)

    def test_remove_friendship(self):
        g = SocialGraph()
        g.add_friendship(1, 2)
        g.remove_friendship(1, 2)
        assert not g.are_friends(1, 2)

    def test_degree_and_edges(self):
        g = SocialGraph()
        g.add_friendship(1, 2)
        g.add_friendship(1, 3)
        assert g.degree(1) == 2
        assert g.num_edges() == 2

    def test_random_uniform_hits_mean_degree(self):
        g = SocialGraph.random_uniform(range(2000), mean_degree=10, seed=4)
        degrees = [g.degree(u) for u in g.users()]
        mean = sum(degrees) / len(degrees)
        assert 8 <= mean <= 12

    def test_preferential_attachment_has_heavy_tail(self):
        g = SocialGraph.preferential_attachment(range(2000), edges_per_user=4, seed=4)
        degrees = sorted((g.degree(u) for u in g.users()), reverse=True)
        mean = sum(degrees) / len(degrees)
        assert degrees[0] > 5 * mean  # hubs exist

    def test_generators_deterministic(self):
        a = SocialGraph.random_uniform(range(100), 5, seed=9)
        b = SocialGraph.random_uniform(range(100), 5, seed=9)
        assert a.num_edges() == b.num_edges()
        for u in range(100):
            assert a.friends_of(u) == b.friends_of(u)


class TestOAuth:
    def test_token_lifecycle(self):
        oauth = OAuthProvider("facebook", token_ttl_s=100.0)
        oauth.register_user("fb_1", "secret")
        token = oauth.authorize("fb_1", "secret", now=0.0)
        assert oauth.validate(token.token, now=50.0).network_user_id == "fb_1"
        with pytest.raises(AuthenticationError):
            oauth.validate(token.token, now=100.0)  # expired

    def test_bad_credentials(self):
        oauth = OAuthProvider("facebook")
        oauth.register_user("fb_1", "secret")
        with pytest.raises(AuthenticationError):
            oauth.authorize("fb_1", "wrong", now=0.0)
        with pytest.raises(AuthenticationError):
            oauth.authorize("unknown", "x", now=0.0)

    def test_revoke(self):
        oauth = OAuthProvider("facebook")
        oauth.register_user("fb_1", "pw")
        token = oauth.authorize("fb_1", "pw", now=0.0)
        oauth.revoke(token.token)
        with pytest.raises(AuthenticationError):
            oauth.validate(token.token, now=1.0)

    def test_tokens_are_unique(self):
        oauth = OAuthProvider("facebook")
        oauth.register_user("fb_1", "pw")
        t1 = oauth.authorize("fb_1", "pw", now=0.0)
        t2 = oauth.authorize("fb_1", "pw", now=1.0)
        assert t1.token != t2.token


class TestSimulatedNetwork:
    @pytest.fixture()
    def network(self):
        net = SimulatedNetwork("facebook")
        for i in (1, 2, 3):
            net.add_profile(FriendInfo("fb_%d" % i, "User %d" % i, "pic%d" % i))
        net.add_friendship("fb_1", "fb_2")
        net.add_checkin(CheckIn("fb_2", poi_id=7, lat=37.9, lon=23.7,
                                timestamp=100, comment="nice"))
        net.add_status(StatusUpdate("fb_2", timestamp=150, text="hello"))
        return net

    def _token(self, network, user="fb_1"):
        return network.oauth.authorize(user, "pw", now=0.0)

    def test_get_profile(self, network):
        token = self._token(network)
        assert network.get_profile(token).name == "User 1"

    def test_get_friends(self, network):
        token = self._token(network)
        friends = network.get_friends(token)
        assert [f.network_user_id for f in friends] == ["fb_2"]

    def test_checkins_visible_for_friends_only(self, network):
        token = self._token(network)
        checkins = network.get_checkins(token, "fb_2", 0, 200)
        assert len(checkins) == 1
        # fb_3 is not a friend of fb_1.
        with pytest.raises(PluginError):
            network.get_checkins(token, "fb_3", 0, 200)

    def test_checkin_time_window(self, network):
        token = self._token(network)
        assert network.get_checkins(token, "fb_2", 0, 100) == []
        assert len(network.get_checkins(token, "fb_2", 100, 101)) == 1

    def test_own_data_always_visible(self, network):
        token = self._token(network, user="fb_2")
        assert len(network.get_checkins(token, "fb_2", 0, 200)) == 1

    def test_statuses(self, network):
        token = self._token(network)
        statuses = network.get_status_updates(token, "fb_2", 0, 200)
        assert statuses[0].text == "hello"

    def test_publish(self, network):
        token = self._token(network)
        network.publish(token, "my blog")
        assert network.published[0].text == "my blog"
        assert network.published[0].network_user_id == "fb_1"

    def test_cross_network_token_rejected(self, network):
        other = SimulatedNetwork("twitter")
        other.add_profile(FriendInfo("tw_1", "T", "p"))
        foreign = other.oauth.authorize("tw_1", "pw", now=0.0)
        with pytest.raises(PluginError):
            network.get_checkins(foreign, "fb_2", 0, 200)

    def test_non_numeric_id_rejected(self):
        net = SimulatedNetwork("facebook")
        with pytest.raises(PluginError):
            net.add_profile(FriendInfo("no-digits", "X", "p"))
