"""Tests for explain_personalized and limited scans."""

import pytest

from repro.config import ClusterConfig
from repro.core.modules.query_answering import (
    QueryAnsweringModule,
    SearchQuery,
)
from repro.core.repositories.poi import POIRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.errors import QueryError
from repro.hbase import Cell, HBaseCluster, HTable, TableDescriptor
from repro.sqlstore import SqlEngine


class TestExplainPersonalized:
    @pytest.fixture()
    def qa(self):
        cluster = HBaseCluster(ClusterConfig(num_nodes=4, regions_per_table=8))
        visits = VisitsRepository(cluster, num_regions=8)
        for uid in range(1, 30):
            for ts in (10, 20, 30):
                visits.store(
                    VisitStruct(user_id=uid, poi_id=uid % 5 + 1,
                                timestamp=ts, grade=0.5, poi_name="P",
                                lat=37.0, lon=23.0)
                )
        module = QueryAnsweringModule(POIRepository(SqlEngine()), visits)
        yield module
        cluster.shutdown()

    def test_profile_totals_match_result(self, qa):
        query = SearchQuery(friend_ids=tuple(range(1, 30)))
        profile = qa.explain_personalized(query)
        result = qa.search(query)
        assert profile["friends"] == 29
        assert profile["records_total"] == result.records_scanned == 29 * 3
        assert len(profile["regions"]) == 8
        assert profile["latency_ms"] > 0

    def test_per_region_fields(self, qa):
        profile = qa.explain_personalized(
            SearchQuery(friend_ids=tuple(range(1, 30)))
        )
        for region in profile["regions"]:
            assert set(region) == {
                "region_id", "node", "records_scanned", "results_returned",
            }
            assert region["node"] in (0, 1, 2, 3)
            assert region["results_returned"] <= region["records_scanned"]

    def test_skew_reflects_distribution(self, qa):
        profile = qa.explain_personalized(
            SearchQuery(friend_ids=tuple(range(1, 30)))
        )
        assert profile["skew"] >= 1.0
        assert profile["records_max_region"] <= profile["records_total"]

    def test_requires_personalized(self, qa):
        with pytest.raises(QueryError):
            qa.explain_personalized(SearchQuery())


class TestScanLimit:
    def _table(self):
        table = HTable(TableDescriptor(name="t", families=["f"], num_regions=4))
        for i in range(100):
            table.put(
                Cell(row=(i * 655).to_bytes(2, "big"), family="f",
                     qualifier=b"q", timestamp=1, value=b"v")
            )
        return table

    def test_limit_caps_output_in_key_order(self):
        table = self._table()
        limited = [c.row for c in table.scan("f", limit=10)]
        full = [c.row for c in table.scan("f")]
        assert limited == full[:10]

    def test_limit_larger_than_table(self):
        table = self._table()
        assert len(list(table.scan("f", limit=10_000))) == 100

    def test_limit_with_range(self):
        table = self._table()
        full = [c.row for c in table.scan("f", b"\x20", b"\xd0")]
        limited = [c.row for c in table.scan("f", b"\x20", b"\xd0", limit=5)]
        assert limited == full[:5]
