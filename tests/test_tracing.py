"""Tests for the end-to-end tracing subsystem.

Covers the :mod:`repro.core.tracing` primitives (span trees, ring
buffers, the slow-query log, thread safety, the disabled no-op path) and
trace-context *propagation*: a personalized query must yield one root
span whose region children carry simulated costs summing to the fan-out
total, with pruning tags matching ``explain_personalized``; batch jobs
(scheduler firings, MapReduce runs) must emit their own span trees.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import ConfigError, PlatformConfig, TracingConfig
from repro.core import MoDisSENSE, SearchQuery
from repro.core.modules.query_answering import QueryAnsweringModule
from repro.core.monitoring import PlatformMetrics
from repro.core.scheduler import PeriodicScheduler
from repro.core.tracing import NOOP_SPAN, NULL_TRACER, Tracer
from repro.core.repositories.visits import VisitStruct
from repro.errors import ValidationError
from repro.mapreduce import JobRunner, MapReduceJob


class FakeClock:
    """Deterministic seconds clock for duration assertions."""

    def __init__(self) -> None:
        self.t = 0.0

    def advance(self, seconds: float) -> None:
        self.t += seconds

    def __call__(self) -> float:
        return self.t


# ------------------------------------------------------------- tracer unit


class TestTracerUnit:
    def test_single_span_becomes_a_tree(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.span("query", friends=3)
        clock.advance(0.010)
        span.finish()
        trace = tracer.last_trace()
        assert trace["root"]["name"] == "query"
        assert trace["root"]["tags"] == {"friends": 3}
        assert trace["root"]["children"] == []
        assert trace["duration_ms"] == pytest.approx(10.0)
        assert trace["span_count"] == 1
        assert trace["stages"] == ["query"]

    def test_nested_tree_assembly_and_child_order(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        root = tracer.span("root")
        clock.advance(0.001)
        a = tracer.span("a", parent=root)
        clock.advance(0.002)
        a.finish()
        b = tracer.span("b", parent=root)
        grandchild = tracer.span("c", parent=b)
        clock.advance(0.003)
        grandchild.finish()
        b.finish()
        clock.advance(0.001)
        root.finish()

        trace = tracer.last_trace()
        assert trace["span_count"] == 4
        assert trace["stages"] == ["a", "b", "c"] or trace["stages"] == [
            "a", "b", "c", "root"
        ]
        tree = trace["root"]
        assert [child["name"] for child in tree["children"]] == ["a", "b"]
        (c_node,) = tree["children"][1]["children"]
        assert c_node["name"] == "c"
        assert tree["duration_ms"] == pytest.approx(7.0)
        assert tree["children"][0]["duration_ms"] == pytest.approx(2.0)
        # Children are ordered by start time, not finish order.
        assert tree["children"][0]["start_ms"] <= tree["children"][1]["start_ms"]

    def test_span_ids_link_parent_and_trace(self):
        tracer = Tracer()
        root = tracer.span("root")
        child = tracer.span("child", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None

    def test_context_manager_finishes_and_tags_errors(self):
        tracer = Tracer()
        with tracer.span("ok") as span:
            span.tag("k", "v")
        assert tracer.last_trace()["root"]["tags"] == {"k": "v"}
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("exploded")
        trace = tracer.last_trace()
        assert trace["root"]["name"] == "boom"
        assert "exploded" in trace["root"]["tags"]["error"]

    def test_double_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("once")
        span.finish()
        span.finish()
        assert len(tracer.recent_traces()) == 1

    def test_ring_buffer_bounds_recent_traces(self):
        tracer = Tracer(max_traces=4)
        for i in range(10):
            tracer.span("q%d" % i).finish()
        traces = tracer.recent_traces()
        assert len(traces) == 4
        # Newest first, oldest evicted.
        assert [t["root"]["name"] for t in traces] == ["q9", "q8", "q7", "q6"]
        assert tracer.recent_traces(limit=2)[0]["root"]["name"] == "q9"
        assert tracer.recent_traces(limit=0) == []

    def test_orphan_traces_are_evicted(self):
        tracer = Tracer(max_traces=1)  # pending limit = 4
        roots = [tracer.span("r%d" % i) for i in range(7)]
        for root in roots:
            tracer.span("child", parent=root).finish()  # root never finishes
        assert tracer.describe()["pending_traces"] <= 4
        assert tracer.dropped_traces == 3

    def test_slow_query_log(self):
        clock = FakeClock()
        tracer = Tracer(slow_threshold_ms=100.0, clock=clock)
        fast = tracer.span("fast")
        clock.advance(0.005)
        fast.finish()
        slow = tracer.span("slow")
        clock.advance(0.500)
        slow.finish()
        assert len(tracer.recent_traces()) == 2
        slow_log = tracer.slow_queries()
        assert [t["root"]["name"] for t in slow_log] == ["slow"]

    def test_slow_log_prefers_latency_ms_tag(self):
        """Simulated latency (the paper's cost model) can cross the
        threshold even when wall time does not — and vice versa."""
        clock = FakeClock()
        tracer = Tracer(slow_threshold_ms=100.0, clock=clock)
        # Wall-fast but simulated-slow: logged.
        tracer.span("sim_slow", latency_ms=350.0).finish()
        # Wall-slow but simulated-fast: not logged.
        wall = tracer.span("sim_fast", latency_ms=2.0)
        clock.advance(0.400)
        wall.finish()
        assert [t["root"]["name"] for t in tracer.slow_queries()] == ["sim_slow"]

    def test_slow_log_ring_is_bounded(self):
        tracer = Tracer(slow_threshold_ms=0.0, slow_log_size=3)
        for i in range(8):
            tracer.span("s%d" % i).finish()
        assert len(tracer.slow_queries()) == 3

    def test_disabled_tracer_is_a_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", key="value")
        assert span is NOOP_SPAN
        assert span.tag("more", 1) is span
        with span:
            pass
        span.finish()
        assert tracer.recent_traces() == []
        assert tracer.last_trace() is None
        assert tracer.describe()["enabled"] is False
        # Children of a no-op parent start fresh traces when re-enabled
        # producers hand NOOP_SPAN around; on the disabled path nothing
        # is recorded at all.
        assert NULL_TRACER.span("x", parent=span) is NOOP_SPAN

    def test_clear_resets_buffers(self):
        tracer = Tracer(slow_threshold_ms=0.0)
        tracer.span("a").finish()
        tracer.clear()
        assert tracer.recent_traces() == []
        assert tracer.slow_queries() == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            Tracer(max_traces=0)
        with pytest.raises(ValidationError):
            Tracer(slow_log_size=0)
        with pytest.raises(ValidationError):
            Tracer(slow_threshold_ms=-1.0)

    def test_from_config(self):
        tracer = Tracer.from_config(TracingConfig())
        assert tracer.enabled is True
        assert tracer.slow_threshold_ms == pytest.approx(250.0)
        off = Tracer.from_config(TracingConfig(enabled=False))
        assert off.span("x") is NOOP_SPAN

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TracingConfig(max_traces=0)
        with pytest.raises(ConfigError):
            TracingConfig(slow_log_size=0)
        with pytest.raises(ConfigError):
            TracingConfig(slow_query_threshold_ms=-5.0)

    def test_concurrent_traces_do_not_interleave(self):
        """N threads each produce whole traces concurrently; every
        assembled tree must contain exactly its own spans."""
        tracer = Tracer(max_traces=1024)
        threads, errors = [], []

        def produce(tid):
            try:
                for i in range(50):
                    root = tracer.span("root-%d" % tid, thread=tid)
                    for name in ("scan", "merge", "rank"):
                        tracer.span(name, parent=root).finish()
                    root.finish()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        for tid in range(8):
            thread = threading.Thread(target=produce, args=(tid,))
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        traces = tracer.recent_traces()
        assert len(traces) == 8 * 50
        for trace in traces:
            assert trace["span_count"] == 4
            tid = trace["root"]["tags"]["thread"]
            assert trace["root"]["name"] == "root-%d" % tid
            assert sorted(c["name"] for c in trace["root"]["children"]) == [
                "merge", "rank", "scan",
            ]
        assert tracer.describe()["pending_traces"] == 0


# ------------------------------------------------------- query propagation


@pytest.fixture()
def traced_platform(small_platform, small_pois):
    """A small platform with visits for users 1..12 over 30 POIs."""
    small_platform.load_pois(small_pois[:30])
    for uid in range(1, 13):
        for k in range(3):
            poi = small_pois[(uid * 3 + k) % 30]
            small_platform.visits_repository.store(VisitStruct(
                user_id=uid, poi_id=poi.poi_id,
                timestamp=1000 + uid * 10 + k,
                grade=0.5 + 0.01 * uid,
                poi_name=poi.name, lat=poi.lat, lon=poi.lon,
                keywords=tuple(poi.keywords),
            ))
    return small_platform


def _find_all(node, name, out=None):
    if out is None:
        out = []
    if node["name"] == name:
        out.append(node)
    for child in node["children"]:
        _find_all(child, name, out)
    return out


def _find_one(node, name):
    (found,) = _find_all(node, name)
    return found


QUERY = SearchQuery(friend_ids=tuple(range(1, 13)), sort_by="interest",
                    limit=10)


class TestQueryTracePropagation:
    def test_personalized_query_emits_full_span_tree(self, traced_platform):
        result = traced_platform.query_answering.search(QUERY)
        assert result.pois  # the query actually found something
        trace = traced_platform.tracer.last_trace()
        assert trace is not None
        root = trace["root"]
        assert root["name"] == "query.personalized"
        # The acceptance bar: >= 4 distinct stage names in one tree.
        stages = set(trace["stages"])
        assert {"route", "fanout", "region.scan", "merge", "rank"} <= stages
        assert {"region.aggregate", "region.sort"} <= stages
        # Client-side stages hang off the root in execution order.
        top = [child["name"] for child in root["children"]]
        assert top == ["route", "fanout", "merge", "rank"]
        # Region scans are children of the fan-out; the coprocessor's
        # aggregate/sort stages nest under their region scan.
        fanout = _find_one(root, "fanout")
        scans = _find_all(fanout, "region.scan")
        assert len(scans) == result.regions_used
        for scan in scans:
            names = {child["name"] for child in scan["children"]}
            assert names == {"region.aggregate", "region.sort"}
        # Root carries the result's headline numbers.
        assert root["tags"]["latency_ms"] == pytest.approx(result.latency_ms)
        assert root["tags"]["records_scanned"] == result.records_scanned
        assert root["tags"]["regions_used"] == result.regions_used

    def test_region_children_sum_to_fanout_total(self, traced_platform):
        traced_platform.query_answering.search(QUERY)
        trace = traced_platform.tracer.last_trace()
        fanout = _find_one(trace["root"], "fanout")
        scans = _find_all(fanout, "region.scan")
        child_cost = sum(scan["tags"]["sim_cost_ms"] for scan in scans)
        assert child_cost == pytest.approx(
            fanout["tags"]["sim_region_cost_ms_total"], rel=1e-9
        )
        # The straggler is the most expensive region child.
        worst = max(scans, key=lambda s: s["tags"]["sim_cost_ms"])
        assert fanout["tags"]["straggler_region"] == worst["tags"]["region_id"]
        assert fanout["tags"]["straggler_cost_ms"] == pytest.approx(
            worst["tags"]["sim_cost_ms"]
        )
        assert fanout["tags"]["straggler_node"] == worst["tags"]["node"]

    def test_regions_pruned_tag_matches_explain(self, traced_platform):
        qa = traced_platform.query_answering
        qa.search(QUERY)
        trace = traced_platform.tracer.last_trace()
        explain = qa.explain_personalized(QUERY)
        root = trace["root"]
        fanout = _find_one(root, "fanout")
        assert root["tags"]["regions_pruned"] == explain["regions_pruned"]
        assert fanout["tags"]["regions_pruned"] == explain["regions_pruned"]
        assert fanout["tags"]["regions_used"] == len(explain["regions"])
        # Per-region scan tags agree with the EXPLAIN breakdown.
        by_region = {r["region_id"]: r for r in explain["regions"]}
        for scan in _find_all(fanout, "region.scan"):
            expect = by_region[scan["tags"]["region_id"]]
            assert scan["tags"]["records_scanned"] == expect["records_scanned"]
            assert scan["tags"]["node"] == expect["node"]

    def test_region_scan_intervals_nest_within_fanout(self, traced_platform):
        traced_platform.query_answering.search(QUERY)
        trace = traced_platform.tracer.last_trace()
        fanout = _find_one(trace["root"], "fanout")
        fanout_end = fanout["start_ms"] + fanout["duration_ms"]
        for scan in _find_all(fanout, "region.scan"):
            assert scan["start_ms"] >= fanout["start_ms"]
            scan_end = scan["start_ms"] + scan["duration_ms"]
            assert scan_end <= fanout_end + 1e-6

    def test_disabled_tracing_gives_identical_results(self, traced_platform):
        """Spans only observe: with the tracer off (or on) the ranked
        answer, scores and profiling counters must not change."""
        traced = traced_platform.query_answering
        untraced = QueryAnsweringModule(
            traced_platform.poi_repository,
            traced_platform.visits_repository,
            tracer=NULL_TRACER,
        )
        for query in (
            QUERY,
            SearchQuery(friend_ids=(1, 2, 3), sort_by="hotness"),
            SearchQuery(friend_ids=(5,), keywords=()),
        ):
            a = traced.search(query)
            b = untraced.search(query)
            assert [(p.poi_id, p.score, p.visit_count) for p in a.pois] == [
                (p.poi_id, p.score, p.visit_count) for p in b.pois
            ]
            assert a.latency_ms == b.latency_ms
            assert a.records_scanned == b.records_scanned
            assert a.regions_used == b.regions_used
            assert a.regions_pruned == b.regions_pruned

    def test_tracing_disabled_platform_records_nothing(self, small_pois):
        config = PlatformConfig.small()
        config.tracing.enabled = False
        platform = MoDisSENSE(config)
        try:
            platform.load_pois(small_pois[:10])
            platform.visits_repository.store(VisitStruct(
                user_id=1, poi_id=small_pois[0].poi_id, timestamp=10,
                grade=0.9, poi_name=small_pois[0].name,
                lat=small_pois[0].lat, lon=small_pois[0].lon,
            ))
            platform.query_answering.search(SearchQuery(friend_ids=(1,)))
            assert platform.tracer.recent_traces() == []
            assert platform.describe()["tracing"]["enabled"] is False
        finally:
            platform.shutdown()

    def test_non_personalized_query_traced(self, traced_platform):
        traced_platform.query_answering.search(SearchQuery(sort_by="hotness"))
        trace = traced_platform.tracer.last_trace()
        assert trace["root"]["name"] == "query.non_personalized"


# --------------------------------------------------------------- batch tier


class TestBatchTracing:
    def test_scheduler_firings_emit_spans_and_metrics(self):
        tracer = Tracer()
        metrics = PlatformMetrics()
        sched = PeriodicScheduler(tracer=tracer, metrics=metrics)
        sched.register("tick", 10.0, lambda now: now)
        sched.advance_by(30.0)  # fires at t=10, 20, 30
        traces = [
            t for t in tracer.recent_traces()
            if t["root"]["name"] == "scheduler.job"
        ]
        assert len(traces) == 3
        assert traces[0]["root"]["tags"]["job"] == "tick"
        assert {t["root"]["tags"]["fire_at"] for t in traces} == {10.0, 20.0, 30.0}
        assert metrics.counter("scheduler.fired", labels={"job": "tick"}) == 3
        hist = metrics.histogram("scheduler.job_wall", labels={"job": "tick"})
        assert hist.count == 3

    def test_mapreduce_run_emits_phase_spans(self):
        tracer = Tracer()
        metrics = PlatformMetrics()

        def mapper(record, emit, counters):
            for word in record.split():
                emit(word, 1)

        def reducer(key, values, emit, counters):
            emit(key, sum(values))

        job = MapReduceJob(name="wc", mapper=mapper, reducer=reducer,
                           num_mappers=2, num_reducers=2)
        with JobRunner(max_workers=2, tracer=tracer, metrics=metrics) as runner:
            result = runner.run(job, ["a b a", "b c", "a"])
        trace = tracer.last_trace()
        root = trace["root"]
        assert root["name"] == "mapreduce.job"
        assert root["tags"] == {"job": "wc", "records": 3}
        assert [c["name"] for c in root["children"]] == [
            "map", "shuffle", "reduce",
        ]
        assert _find_one(root, "map")["tags"]["tasks"] == result.map_tasks
        assert _find_one(root, "shuffle")["tags"]["pairs"] == 6
        assert _find_one(root, "reduce")["tags"]["tasks"] == result.reduce_tasks
        assert metrics.counter("mapreduce.jobs", labels={"job": "wc"}) == 1
        assert metrics.gauge(
            "mapreduce.last_output_pairs", labels={"job": "wc"}
        ) == len(result.pairs)

    def test_mapreduce_without_tracer_still_works(self):
        def mapper(record, emit, counters):
            emit(record % 2, record)

        def reducer(key, values, emit, counters):
            emit(key, sum(values))

        job = MapReduceJob(name="plain", mapper=mapper, reducer=reducer)
        with JobRunner(max_workers=2) as runner:
            result = runner.run(job, list(range(10)))
        assert dict(result.pairs) == {0: 20, 1: 25}
