"""The telemetry pipeline: time-series store, SLO engine, profiler,
wide-event log, and the deterministic chaos drill."""

import threading
import warnings

import pytest

from repro import threadreg
from repro.config import (
    ClusterConfig,
    FaultsConfig,
    PlatformConfig,
    SLOSpec,
    TelemetryConfig,
    default_slos,
)
from repro.core.platform import MoDisSENSE
from repro.core.repositories.visits import VisitStruct
from repro.core.scheduler import PeriodicScheduler, build_platform_scheduler
from repro.core.telemetry import (
    ContinuousProfiler,
    SLOEngine,
    TimeSeriesStore,
    WideEventLog,
)
from repro.errors import DegradedResultWarning, ValidationError


# --------------------------------------------------------------------------
# TimeSeriesStore
# --------------------------------------------------------------------------


class TestTimeSeriesStore:
    def test_base_samples_and_rollups(self):
        store = TimeSeriesStore(resolutions=(1.0, 10.0))
        for t in range(25):
            store.record("x", "gauge", float(t), float(t))
        raw = store.query("x")
        assert raw["kind"] == "gauge"
        assert raw["points"][0] == [0.0, 0.0]
        assert raw["points"][-1] == [24.0, 24.0]

        rolled = store.query("x", resolution=10.0)
        assert rolled["resolution"] == 10.0
        # Buckets [0, 10), [10, 20), [20, 25 open).
        starts = [p[0] for p in rolled["points"]]
        assert starts == [0.0, 10.0, 20.0]
        b0 = rolled["points"][0]
        # (start, count, sum, min, max, last)
        assert b0[1] == 10 and b0[2] == sum(range(10))
        assert b0[3] == 0.0 and b0[4] == 9.0 and b0[5] == 9.0

    def test_nearest_resolution_chosen(self):
        store = TimeSeriesStore(resolutions=(1.0, 60.0))
        store.record("x", "counter", 1.0, 0.0)
        assert store.query("x", resolution=45.0)["resolution"] == 60.0
        assert store.query("x", resolution=2.0)["resolution"] == 1.0

    def test_scrape_folds_registry_snapshot(self):
        store = TimeSeriesStore()
        n = store.scrape({"a": ("counter", 1.0), "b": ("gauge", 2.0)}, 5.0)
        assert n == 2
        assert store.scrapes == 1 and store.last_scrape_at == 5.0
        assert store.names() == ["a", "b"]
        assert store.kind_of("a") == "counter"
        assert store.latest("b") == 2.0

    def test_value_at_and_delta(self):
        store = TimeSeriesStore()
        for t, v in ((1.0, 10.0), (2.0, 14.0), (3.0, 20.0)):
            store.record("c", "counter", v, t)
        assert store.value_at("c", 2.5) == 14.0
        assert store.value_at("c", 0.5) == 0.0  # before first sample
        assert store.delta("c", 1.0, 3.0) == 10.0
        # Clamp: a reset counter never yields a negative delta.
        store.record("c", "counter", 0.0, 4.0)
        assert store.delta("c", 3.0, 4.0) == 0.0

    def test_value_at_falls_back_to_rollups_after_eviction(self):
        store = TimeSeriesStore(base_samples=4, resolutions=(1.0,))
        for t in range(10):
            store.record("c", "counter", float(t), float(t))
        # t=2 evicted from the 4-sample base ring; the 1s rollup keeps it.
        assert store.value_at("c", 2.0) == 2.0

    def test_window_samples_bridge_rollups_and_base(self):
        store = TimeSeriesStore(base_samples=4, resolutions=(1.0,))
        for t in range(10):
            store.record("g", "gauge", float(t), float(t))
        samples = store.window_samples("g", 1.0, 9.0)
        # Every instant past the window start is represented (rollup
        # buckets stand in where the base ring was evicted).
        assert [s[0] for s in samples] == [float(t) for t in range(2, 10)]
        assert all(mn <= mx for _t, mn, mx in samples)

    def test_bounded_memory(self):
        store = TimeSeriesStore(base_samples=8, resolutions=(1.0,),
                                buckets_per_resolution=4)
        for t in range(100):
            store.record("x", "gauge", 1.0, float(t))
        raw = store.query("x")
        assert len(raw["points"]) == 8
        rolled = store.query("x", resolution=1.0)
        assert len(rolled["points"]) <= 5  # ring + open bucket

    def test_query_since_until_limit(self):
        store = TimeSeriesStore()
        for t in range(10):
            store.record("x", "gauge", float(t), float(t))
        pts = store.query("x", since=3.0, until=7.0)["points"]
        assert [p[0] for p in pts] == [3.0, 4.0, 5.0, 6.0, 7.0]
        pts = store.query("x", limit=2)["points"]
        assert [p[0] for p in pts] == [8.0, 9.0]

    def test_validation(self):
        with pytest.raises(ValidationError):
            TimeSeriesStore(base_samples=1)
        with pytest.raises(ValidationError):
            TimeSeriesStore(resolutions=())
        with pytest.raises(ValidationError):
            TimeSeriesStore(resolutions=(0.0,))


# --------------------------------------------------------------------------
# SLO engine
# --------------------------------------------------------------------------


def _ratio_spec(**overrides):
    defaults = dict(
        name="coverage",
        kind="ratio",
        target=0.999,
        bad_series="bad",
        total_series="total",
        fast_window_s=60,
        slow_window_s=600,
        critical_burn=8.0,
        warning_burn=2.0,
    )
    defaults.update(overrides)
    return SLOSpec(**defaults)


class TestSLOEngine:
    def test_healthy_with_no_data(self):
        store = TimeSeriesStore()
        engine = SLOEngine([_ratio_spec()], store)
        out = engine.evaluate(100.0)
        assert out["state"] == "healthy"
        assert out["slos"][0]["no_data"] is True

    def test_ratio_burn_trips_critical(self):
        store = TimeSeriesStore()
        # 10 scrapes of clean traffic, then bad counts surge: 25% bad
        # over the fast window is a 250x burn against a 0.1% budget.
        for t in range(10):
            store.scrape({"bad": ("counter", 0.0),
                          "total": ("counter", float(10 * t))}, float(t))
        engine = SLOEngine([_ratio_spec()], store)
        assert engine.evaluate(9.0)["state"] == "healthy"
        store.scrape({"bad": ("counter", 10.0),
                      "total": ("counter", 130.0)}, 10.0)
        out = engine.evaluate(10.0)
        assert out["state"] == "critical"
        slo = out["slos"][0]
        assert slo["fast_burn"] >= slo["critical_burn"]
        assert slo["budget_remaining"] < 1.0

    def test_threshold_direction_le(self):
        store = TimeSeriesStore()
        spec = SLOSpec(
            name="p99", kind="threshold", target=0.99,
            series="lat:p99", threshold=100.0, direction="le",
            fast_window_s=10, slow_window_s=60,
        )
        for t in range(5):
            store.scrape({"lat:p99": ("gauge", 50.0)}, float(t))
        engine = SLOEngine([spec], store)
        assert engine.evaluate(4.0)["state"] == "healthy"
        store.scrape({"lat:p99": ("gauge", 500.0)}, 5.0)
        out = engine.evaluate(5.0)
        # 1 violating sample of 6 in the fast window: burn 1/6/0.01 > 8.
        assert out["state"] == "critical"

    def test_threshold_budget_consumes_once_per_sample(self):
        store = TimeSeriesStore()
        spec = SLOSpec(
            name="p99", kind="threshold", target=0.5,
            series="s", threshold=1.0, direction="le",
            fast_window_s=10, slow_window_s=60,
        )
        engine = SLOEngine([spec], store)
        store.scrape({"s": ("gauge", 5.0)}, 1.0)
        first = engine.evaluate(1.0)["slos"][0]["budget_remaining"]
        # Re-evaluating the same store state must not double-count.
        again = engine.evaluate(1.0)["slos"][0]["budget_remaining"]
        assert first == again

    def test_transition_emits_alert_event_and_counter(self):
        from repro.core.monitoring import PlatformMetrics

        store = TimeSeriesStore()
        metrics = PlatformMetrics()
        events = WideEventLog()
        engine = SLOEngine(
            [_ratio_spec()], store, metrics=metrics, events=events
        )
        for t in range(3):
            store.scrape({"bad": ("counter", float(5 * t)),
                          "total": ("counter", float(10 * t))}, float(t))
        out = engine.evaluate(2.0)
        assert out["state"] == "critical"
        alerts = events.query(event_type="slo.transition")
        assert alerts and alerts[0]["to"] == "critical"
        assert alerts[0]["slo"] == "coverage"
        assert metrics.counter(
            "slo.transitions", labels={"slo": "coverage", "to": "critical"}
        ) == 1
        # Recovery: once the burst ages out of the slow window too,
        # the SLO transitions back and announces it.
        for t in range(3, 700):
            store.scrape({"bad": ("counter", 10.0),
                          "total": ("counter", float(10 * t))}, float(t))
        assert engine.evaluate(699.0)["state"] == "healthy"
        alerts = events.query(event_type="slo.transition")
        assert alerts[0]["to"] == "healthy"

    def test_default_slos_are_valid_and_unique(self):
        specs = default_slos()
        names = [s.name for s in specs]
        assert len(names) == len(set(names)) == 8
        assert "fanout_coverage" in names
        assert "ingest_freshness" in names
        assert "goodput" in names
        store = TimeSeriesStore()
        engine = SLOEngine(specs, store)
        assert engine.evaluate(0.0)["state"] == "healthy"

    def test_spec_validation(self):
        with pytest.raises(Exception):
            SLOSpec(name="x", kind="ratio", target=1.5,
                    bad_series="b", total_series="t")
        with pytest.raises(Exception):
            SLOSpec(name="x", kind="nope", target=0.9)
        with pytest.raises(Exception):
            SLOSpec(name="x", kind="threshold", target=0.9,
                    series="s", threshold=1.0, direction="sideways")


# --------------------------------------------------------------------------
# Wide-event log
# --------------------------------------------------------------------------


class TestWideEventLog:
    def test_tail_sampling_keeps_one_in_n(self):
        log = WideEventLog(sample_every=4)
        for _ in range(8):
            log.emit({"type": "boring"})
        kept = log.query(event_type="boring")
        assert len(kept) == 2  # indices 0 and 4
        stats = log.stats()
        assert stats["emitted"] == 8 and stats["sampled_out"] == 6

    def test_interesting_events_always_kept(self):
        log = WideEventLog(sample_every=1000)
        for i in range(20):
            log.emit({"type": "q", "degraded": i % 2 == 1})
        degraded = log.query(event_type="q", interesting_only=True)
        assert len(degraded) == 10
        assert all(e["interesting"] for e in degraded)
        # keep=True works the same way for explicitly pinned events.
        log.emit({"type": "pinned"}, keep=True)
        assert log.query(event_type="pinned", interesting_only=True)

    def test_interesting_ring_survives_boring_burst(self):
        log = WideEventLog(capacity=8, interesting_capacity=8,
                           sample_every=1)
        log.emit({"type": "q", "error": "boom"})
        for _ in range(50):
            log.emit({"type": "noise"})
        # Evicted from the recent ring, retained in the interesting one.
        assert log.query(event_type="q") == []
        assert log.query(event_type="q", interesting_only=True)

    def test_events_stamped_with_seq_newest_first(self):
        log = WideEventLog(sample_every=1)
        log.emit({"type": "a"})
        log.emit({"type": "b"})
        events = log.query()
        assert events[0]["type"] == "b" and events[0]["seq"] == 2
        assert events[1]["type"] == "a" and events[1]["seq"] == 1


# --------------------------------------------------------------------------
# Continuous profiler
# --------------------------------------------------------------------------


class TestContinuousProfiler:
    def test_sample_once_attributes_registered_threads(self):
        profiler = ContinuousProfiler()
        done = threading.Event()
        stop = threading.Event()

        def worker():
            threadreg.register_current_thread("ingest")
            done.set()
            stop.wait(5.0)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        done.wait(5.0)
        try:
            # The sampling thread itself is whoever calls sample_once;
            # exclude it so only the worker (+ pytest machinery) counts.
            profiler.sample_once(skip_ident=threading.get_ident())
            stats = profiler.stats()
            assert stats["samples"] >= 1
            assert stats["by_component"].get("ingest", 0) >= 1
        finally:
            stop.set()
            thread.join()
            threadreg._components.pop(thread.ident, None)

    def test_folded_output_shape(self):
        profiler = ContinuousProfiler()
        previous = threadreg.push_component("rest")
        try:
            profiler.sample_once()
        finally:
            threadreg.pop_component(previous)
        lines = profiler.folded(component="rest")
        assert lines, "own stack must be sampled"
        head, count = lines[0].rsplit(" ", 1)
        assert head.startswith("rest;")
        assert int(count) >= 1
        # Frame labels are module.function pairs.
        assert any("test_telemetry" in part for part in head.split(";"))

    def test_attributed_fraction(self):
        profiler = ContinuousProfiler()
        previous = threadreg.push_component("rest")
        try:
            profiler.sample_once()
        finally:
            threadreg.pop_component(previous)
        stats = profiler.stats()
        assert 0.0 < stats["attributed_fraction"] <= 1.0

    def test_start_stop_idempotent(self):
        profiler = ContinuousProfiler(interval_s=0.005)
        profiler.start()
        profiler.start()
        assert profiler.running
        profiler.stop()
        assert not profiler.running
        profiler.stop()

    def test_reset(self):
        profiler = ContinuousProfiler()
        profiler.sample_once()
        assert profiler.stats()["samples"] >= 1
        profiler.reset()
        assert profiler.stats()["samples"] == 0


# --------------------------------------------------------------------------
# Thread registry
# --------------------------------------------------------------------------


class TestThreadRegistry:
    def test_push_pop_restores_previous(self):
        assert threadreg.component_of(threading.get_ident()) is None
        prev = threadreg.push_component("outer")
        try:
            assert threadreg.component_of(threading.get_ident()) == "outer"
            inner_prev = threadreg.push_component("inner")
            assert threadreg.component_of(threading.get_ident()) == "inner"
            threadreg.pop_component(inner_prev)
            assert threadreg.component_of(threading.get_ident()) == "outer"
        finally:
            threadreg.pop_component(prev)
        assert threadreg.component_of(threading.get_ident()) is None

    def test_register_unregister(self):
        threadreg.register_current_thread("x")
        assert threadreg.snapshot()[threading.get_ident()] == "x"
        threadreg.unregister_current_thread()
        assert threading.get_ident() not in threadreg.snapshot()


# --------------------------------------------------------------------------
# Scheduler: level-triggered scrape job
# --------------------------------------------------------------------------


class TestSchedulerCatchUp:
    def test_catch_up_job_fires_once_per_missed_period(self):
        sched = PeriodicScheduler()
        fired = []
        sched.register("cron", 1.0, fired.append)
        sched.advance_to(10.0)
        assert len(fired) == 10

    def test_level_triggered_job_fires_once_per_advance(self):
        sched = PeriodicScheduler()
        fired = []
        sched.register("scrape", 1.0, fired.append, catch_up=False)
        sched.advance_to(100.0)
        assert fired == [1.0]
        # The schedule stays phase-aligned: next fire is past 100.
        assert sched.job("scrape").next_fire_at == 101.0
        sched.advance_to(103.5)
        assert fired == [1.0, 101.0]

    def test_level_triggered_fires_every_period_under_small_steps(self):
        sched = PeriodicScheduler()
        fired = []
        sched.register("scrape", 1.0, fired.append, catch_up=False)
        for _ in range(5):
            sched.advance_by(1.0)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]


# --------------------------------------------------------------------------
# Platform integration: the chaos drill
# --------------------------------------------------------------------------


def _drill_config(**fault_overrides):
    faults = dict(enabled=True, lost_region_fraction=1.0,
                  stale_location_errors=0, seed=7)
    faults.update(fault_overrides)
    return PlatformConfig(
        cluster=ClusterConfig(num_nodes=4, regions_per_table=8),
        faults=FaultsConfig(**faults),
        telemetry=TelemetryConfig(profiler_enabled=False),
    )


def _seed_visits(platform, users=30):
    for uid in range(1, users):
        platform.visits_repository.store(VisitStruct(
            user_id=uid, poi_id=1, timestamp=uid, grade=0.5,
            poi_name="A", lat=37.98, lon=23.73, keywords=("x",),
        ))


class TestChaosDrill:
    """Seeded node kill -> coverage SLO fast burn -> critical -> recovery."""

    def test_node_kill_burns_coverage_budget_to_critical(self):
        from repro.core.modules.query_answering import SearchQuery

        with MoDisSENSE(_drill_config()) as platform:
            _seed_visits(platform)
            scheduler = build_platform_scheduler(platform)
            query = SearchQuery(friend_ids=tuple(range(1, 30)),
                                sort_by="hotness")
            # Healthy baseline: clean traffic, scraped each second.
            for _ in range(5):
                platform.search(query)
                scheduler.advance_by(1.0)
            health = platform.telemetry.health()
            assert health["state"] == "healthy"

            # The drill: deterministically kill node 0 mid-traffic.
            platform.hbase.fail_node(0)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedResultWarning)
                for _ in range(5):
                    platform.search(query)
                    scheduler.advance_by(1.0)

            health = platform.telemetry.health()
            assert health["state"] == "critical"
            by_name = {s["name"]: s for s in health["slos"]}
            coverage = by_name["fanout_coverage"]
            assert coverage["state"] == "critical"
            assert coverage["fast_burn"] >= coverage["critical_burn"]
            assert coverage["budget_remaining"] < 1.0
            # The degraded-rate SLO burns alongside coverage.
            assert by_name["degraded_query_rate"]["state"] == "critical"

            # The timeline explains itself: node.failed is on record.
            node_events = platform.telemetry.events.query(
                event_type="node.failed", interesting_only=True
            )
            assert node_events and node_events[0]["node"] == 0

            # Recovery: node back, clean traffic.  The fast burn clears
            # within a fast window (no longer critical) while the slow
            # window still remembers the incident.
            platform.hbase.recover_node(0)
            for _ in range(70):
                platform.search(query)
                scheduler.advance_by(1.0)
            health = platform.telemetry.health()
            by_name = {s["name"]: s for s in health["slos"]}
            coverage = by_name["fanout_coverage"]
            assert coverage["state"] != "critical"
            assert coverage["fast_burn"] < coverage["critical_burn"]

            # Once the incident ages out of the slow window too, the
            # SLO returns to healthy (scrape-only ticks age the clock).
            for _ in range(650):
                scheduler.advance_by(1.0)
            for _ in range(3):
                platform.search(query)
                scheduler.advance_by(1.0)
            health = platform.telemetry.health()
            by_name = {s["name"]: s for s in health["slos"]}
            assert by_name["fanout_coverage"]["state"] == "healthy"
            recovered = platform.telemetry.events.query(
                event_type="node.recovered", interesting_only=True
            )
            assert recovered and recovered[0]["node"] == 0

    def test_zero_fault_run_stays_healthy(self):
        from repro.core.modules.query_answering import SearchQuery

        with MoDisSENSE(_drill_config(lost_region_fraction=0.0)) as platform:
            _seed_visits(platform)
            scheduler = build_platform_scheduler(platform)
            query = SearchQuery(friend_ids=tuple(range(1, 30)),
                                sort_by="hotness")
            for _ in range(10):
                platform.search(query)
                scheduler.advance_by(1.0)
            health = platform.telemetry.health()
            assert health["state"] == "healthy"
            assert all(s["state"] == "healthy" for s in health["slos"])


# --------------------------------------------------------------------------
# Platform integration: events, exemplars, byte-identical answers
# --------------------------------------------------------------------------


class TestPlatformTelemetry:
    def _platform(self, telemetry=None):
        return MoDisSENSE(PlatformConfig(
            cluster=ClusterConfig(num_nodes=4, regions_per_table=8),
            telemetry=telemetry or TelemetryConfig(profiler_enabled=False),
        ))

    def test_query_wide_event_carries_cost_account(self):
        from repro.core.modules.query_answering import SearchQuery

        with self._platform() as platform:
            _seed_visits(platform, users=10)
            result = platform.search(
                SearchQuery(friend_ids=(1, 2, 3), sort_by="hotness")
            )
            events = platform.telemetry.events.query(
                event_type="query.personalized"
            )
            assert events, "first query event is always kept"
            event = events[0]
            assert event["friends"] == 3
            assert event["latency_ms"] == result.latency_ms
            assert event["records_scanned"] == result.records_scanned
            assert event["regions_used"] == result.regions_used
            assert event["trace_id"] == result.trace_id
            assert event["degraded"] is False
            assert "retries" in event and "hedges" in event

    def test_latency_histogram_carries_trace_exemplars(self):
        from repro.core.modules.query_answering import SearchQuery

        with self._platform() as platform:
            _seed_visits(platform, users=10)
            result = platform.search(
                SearchQuery(friend_ids=(1, 2, 3), sort_by="hotness")
            )
            assert result.trace_id is not None
            hist = platform.metrics.histogram("query.personalized")
            exemplars = hist.exemplars()
            assert exemplars
            assert any(e["trace_id"] == result.trace_id for e in exemplars)
            # The exemplar links to a retrievable trace.
            traces = platform.tracer.recent_traces()
            assert any(t["trace_id"] == result.trace_id for t in traces)

    def test_answers_byte_identical_with_telemetry_off(self):
        from repro.core.modules.query_answering import SearchQuery

        def run(telemetry_cfg):
            with self._platform(telemetry=telemetry_cfg) as platform:
                _seed_visits(platform, users=20)
                out = []
                for friends in ((1, 2, 3), tuple(range(1, 20))):
                    result = platform.search(
                        SearchQuery(friend_ids=friends, sort_by="hotness")
                    )
                    out.append([
                        (p.poi_id, p.name, p.lat, p.lon, p.score,
                         p.visit_count)
                        for p in result.pois
                    ])
                return out

        with_telemetry = run(TelemetryConfig(enabled=True))
        without = run(TelemetryConfig(enabled=False))
        assert with_telemetry == without

    def test_telemetry_off_platform_has_no_hub(self):
        with self._platform(
            telemetry=TelemetryConfig(enabled=False)
        ) as platform:
            assert platform.telemetry is None
            assert platform.describe()["telemetry"] == {"enabled": False}

    def test_scrape_job_populates_store_and_freshness(self):
        from repro.config import IngestConfig

        config = PlatformConfig(
            cluster=ClusterConfig(num_nodes=4, regions_per_table=8),
            ingest=IngestConfig(enabled=True, refresh_interval_s=0.0),
            telemetry=TelemetryConfig(profiler_enabled=False),
        )
        with MoDisSENSE(config) as platform:
            scheduler = build_platform_scheduler(platform)
            platform.ingest_visit(VisitStruct(
                user_id=1, poi_id=1, timestamp=100, grade=0.5,
                poi_name="A", lat=37.98, lon=23.73, keywords=("x",),
            ))
            assert platform.ingest.drain(timeout_s=10.0)
            scheduler.advance_by(2.0)
            store = platform.telemetry.store
            assert "ingest.applied" in store.names()
            assert store.latest("ingest.applied") == 1.0
            # Drained and published: the platform is fresh.
            assert store.latest("ingest.freshness_age_s") == 0.0
            batch_events = platform.telemetry.events.query(
                event_type="ingest.batch"
            )
            assert batch_events
            assert batch_events[0]["size"] == 1
            assert batch_events[0]["queue_wait_ms"] >= 0.0

    def test_ingest_freshness_age_zero_when_idle(self):
        from repro.config import IngestConfig

        config = PlatformConfig(
            cluster=ClusterConfig(num_nodes=4, regions_per_table=8),
            ingest=IngestConfig(enabled=True),
            telemetry=TelemetryConfig(profiler_enabled=False),
        )
        with MoDisSENSE(config) as platform:
            assert platform.ingest.freshness_age_s() == 0.0

    def test_breaker_events_reach_the_log(self):
        # Unit-level: a cluster with an event log attached reports
        # breaker opens (platform wiring covered by the chaos drill).
        from repro.hbase import HBaseCluster

        cluster = HBaseCluster(ClusterConfig(num_nodes=2,
                                             regions_per_table=4))
        log = WideEventLog()
        cluster.attach_event_log(log)
        try:
            for epoch in range(cluster.faults_config.breaker_threshold):
                cluster._breaker_record(0, ok=False, epoch=epoch)
            opened = log.query(event_type="breaker.opened",
                               interesting_only=True)
            assert opened and opened[0]["node"] == 0
            cluster._breaker_record(0, ok=True, epoch=10)
            assert log.query(event_type="breaker.closed",
                             interesting_only=True)
        finally:
            cluster.shutdown()

    def test_profiler_attributes_fanout_pool(self):
        from repro.core.modules.query_answering import SearchQuery

        config = PlatformConfig(
            cluster=ClusterConfig(num_nodes=4, regions_per_table=8),
            telemetry=TelemetryConfig(
                profiler_enabled=True, profiler_interval_s=0.002
            ),
        )
        with MoDisSENSE(config) as platform:
            _seed_visits(platform, users=30)
            query = SearchQuery(friend_ids=tuple(range(1, 30)),
                                sort_by="hotness")
            for _ in range(30):
                platform.search(query)
            stats = platform.telemetry.profiler.stats()
            assert stats["samples"] > 0
            # The fan-out pool registered itself via the executor
            # initializer, so its idle/busy samples carry a component.
            assert "fanout" in stats["by_component"]
