"""Tests for row-key byte encodings."""

import pytest

from repro.errors import ValidationError
from repro.hbase import (
    compose_key,
    decode_int,
    decode_int_desc,
    encode_int,
    encode_int_desc,
    next_prefix,
    split_key,
)
from repro.hbase.bytes_util import salt_for, uniform_split_points


class TestIntEncoding:
    def test_roundtrip(self):
        for value in (0, 1, 255, 256, 1 << 40, (1 << 64) - 1):
            assert decode_int(encode_int(value)) == value

    def test_order_preserved(self):
        values = [0, 5, 99, 100, 1_000_000, 1 << 50]
        encoded = [encode_int(v) for v in values]
        assert encoded == sorted(encoded)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            encode_int(-1)

    def test_overflow_rejected(self):
        with pytest.raises(ValidationError):
            encode_int(1 << 64)
        with pytest.raises(ValidationError):
            encode_int(256, width=1)

    def test_desc_roundtrip(self):
        for value in (0, 7, 1 << 30):
            assert decode_int_desc(encode_int_desc(value)) == value

    def test_desc_reverses_order(self):
        values = [0, 10, 1000, 1 << 40]
        encoded = [encode_int_desc(v) for v in values]
        assert encoded == sorted(encoded, reverse=True)


class TestComposeKey:
    def test_roundtrip_with_ascii_parts(self):
        key = compose_key("user", "poi", "123")
        assert split_key(key) == [b"user", b"poi", b"123"]

    def test_str_and_bytes_parts(self):
        assert compose_key(b"ab", "cd") == b"ab\x1fcd"

    def test_non_string_part_rejected(self):
        with pytest.raises(ValidationError):
            compose_key("a", 5)

    def test_key_ordering_follows_first_component(self):
        a = compose_key(encode_int(1), encode_int(999))
        b = compose_key(encode_int(2), encode_int(0))
        assert a < b


class TestNextPrefix:
    def test_simple_increment(self):
        assert next_prefix(b"abc") == b"abd"

    def test_carry(self):
        assert next_prefix(b"a\xff") == b"b"

    def test_all_ff_means_unbounded(self):
        assert next_prefix(b"\xff\xff") == b""

    def test_prefix_scan_bounds(self):
        prefix = b"user1"
        stop = next_prefix(prefix)
        assert prefix < prefix + b"\x00" < stop
        assert not (prefix + b"zzz" >= stop)


class TestSplitPointsAndSalt:
    def test_uniform_split_points_count(self):
        points = uniform_split_points(8)
        assert len(points) == 7
        assert points == sorted(points)

    def test_single_region_no_points(self):
        assert uniform_split_points(1) == []

    def test_invalid_count(self):
        with pytest.raises(ValidationError):
            uniform_split_points(0)

    def test_salt_is_deterministic(self):
        assert salt_for(42) == salt_for(42)
        assert salt_for(42) != salt_for(43)

    def test_salt_spreads_users_across_regions(self):
        # With 32 uniform regions, 10k users should hit nearly all of
        # them and no region should get more than ~3x its fair share.
        points = uniform_split_points(32)
        boundaries = [b""] + points

        def region_of(salt):
            idx = 0
            for i, b in enumerate(boundaries):
                if salt >= b:
                    idx = i
            return idx

        counts = {}
        for uid in range(10_000):
            r = region_of(salt_for(uid))
            counts[r] = counts.get(r, 0) + 1
        assert len(counts) == 32
        assert max(counts.values()) < 3 * (10_000 / 32)
