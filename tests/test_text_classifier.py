"""Tests for features, Naive Bayes and the sentiment pipeline."""

import math

import pytest

from repro.config import SentimentConfig
from repro.datagen import ReviewGenerator
from repro.errors import NotTrainedError, ValidationError
from repro.mapreduce import JobRunner
from repro.text import (
    FeatureExtractor,
    NaiveBayesClassifier,
    SentimentPipeline,
    bns_scores,
)
from repro.text.features import _norm_ppf


class TestNormPpf:
    def test_median(self):
        assert _norm_ppf(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_known_quantiles(self):
        assert _norm_ppf(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert _norm_ppf(0.025) == pytest.approx(-1.959964, abs=1e-4)
        assert _norm_ppf(0.8413447) == pytest.approx(1.0, abs=1e-4)

    def test_symmetry(self):
        for p in (0.01, 0.1, 0.3):
            assert _norm_ppf(p) == pytest.approx(-_norm_ppf(1 - p), abs=1e-8)

    def test_invalid(self):
        with pytest.raises(ValueError):
            _norm_ppf(0.0)
        with pytest.raises(ValueError):
            _norm_ppf(1.0)


class TestBNS:
    def test_discriminative_feature_scores_higher(self):
        pos = {"good": 90, "meh": 50}
        neg = {"bad": 85, "meh": 50}
        scores = bns_scores(pos, neg, num_pos=100, num_neg=100)
        assert scores["good"] > scores["meh"]
        assert scores["bad"] > scores["meh"]

    def test_balanced_feature_near_zero(self):
        scores = bns_scores({"x": 50}, {"x": 50}, 100, 100)
        assert scores["x"] == pytest.approx(0.0, abs=1e-9)


class TestFeatureExtractor:
    DOCS = [
        ("great great food lovely place", 1),
        ("awful bad food dirty place", 0),
        ("great service lovely view", 1),
        ("bad service awful noise", 0),
    ] * 5

    def test_tf_counts_vs_presence(self):
        tf = FeatureExtractor(SentimentConfig(use_tf=True, use_bns=False,
                                              min_occurrences=0))
        tf.fit(self.DOCS)
        counts = tf.transform("great great food")
        assert counts["great"] == 2

        binary = FeatureExtractor(SentimentConfig(use_tf=False, use_bns=False,
                                                  min_occurrences=0))
        binary.fit(self.DOCS)
        counts = binary.transform("great great food")
        assert counts["great"] == 1

    def test_bigrams_included(self):
        fe = FeatureExtractor(SentimentConfig(use_bigrams=True, use_bns=False,
                                              min_occurrences=0, stem=False))
        fe.fit([("spotless clean room", 1), ("barely clean room", 0)] * 3)
        features = fe.transform("spotless clean")
        assert "spotless_clean" in features

    def test_min_occurrence_pruning(self):
        fe = FeatureExtractor(SentimentConfig(use_bns=False, use_bigrams=False,
                                              min_occurrences=3, stem=False))
        docs = [("rare word here", 1)] + [("common text common", 0)] * 5
        fe.fit(docs)
        assert "rare" not in fe.transform("rare common")
        assert "common" in fe.transform("rare common")

    def test_bns_keeps_fraction(self):
        full = FeatureExtractor(SentimentConfig(use_bns=False, min_occurrences=0))
        full.fit(self.DOCS)
        selected = FeatureExtractor(
            SentimentConfig(use_bns=True, bns_keep_fraction=0.3, min_occurrences=0)
        )
        selected.fit(self.DOCS)
        assert 0 < selected.vocabulary_size < full.vocabulary_size


class TestNaiveBayes:
    def test_untrained_raises(self):
        with pytest.raises(NotTrainedError):
            NaiveBayesClassifier().predict({"x": 1})

    def test_invalid_smoothing(self):
        with pytest.raises(ValidationError):
            NaiveBayesClassifier(smoothing=0.0)

    def test_learns_separable_classes(self):
        nb = NaiveBayesClassifier()
        nb.train(
            [({"good": 2}, 1), ({"nice": 1}, 1), ({"bad": 2}, 0), ({"ugly": 1}, 0)]
        )
        assert nb.predict({"good": 1}) == 1
        assert nb.predict({"bad": 1}) == 0

    def test_predict_proba_in_unit_interval_and_consistent(self):
        nb = NaiveBayesClassifier()
        nb.train([({"a": 3}, 1), ({"b": 3}, 0)])
        p = nb.predict_proba({"a": 1})
        assert 0.5 < p <= 1.0
        assert nb.predict_proba({"b": 1}) < 0.5
        # Unseen features fall back to the prior-driven score.
        assert 0.0 <= nb.predict_proba({"zzz": 1}) <= 1.0

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValidationError):
            NaiveBayesClassifier().train([])

    def test_invalid_label_rejected(self):
        with pytest.raises(ValidationError):
            NaiveBayesClassifier().train([({"a": 1}, 2)])

    def test_prior_influences_ambiguous_doc(self):
        nb = NaiveBayesClassifier()
        # 3:1 positive corpus; a doc of unseen words should lean positive.
        nb.train([({"w%d" % i: 1}, 1) for i in range(3)] + [({"x": 1}, 0)])
        assert nb.predict_proba({"unseen": 1}) > 0.5


class TestSentimentPipeline:
    def test_binarize_rating(self):
        assert SentimentPipeline.binarize_rating(5) == 1
        assert SentimentPipeline.binarize_rating(4) == 1
        assert SentimentPipeline.binarize_rating(3) is None
        assert SentimentPipeline.binarize_rating(2) == 0
        assert SentimentPipeline.binarize_rating(1) == 0
        with pytest.raises(ValidationError):
            SentimentPipeline.binarize_rating(0)

    def test_untrained_raises(self):
        with pytest.raises(NotTrainedError):
            SentimentPipeline().score("anything")

    def test_trains_to_high_accuracy_on_synthetic_corpus(self):
        corpus = ReviewGenerator(seed=3, capacity=4000).labeled_texts(1200)
        pipeline = SentimentPipeline(SentimentConfig.optimized())
        report = pipeline.train(corpus)
        assert report.training_accuracy > 0.9
        assert report.vocabulary_size > 50

    def test_optimized_beats_baseline(self):
        gen = ReviewGenerator(seed=9, capacity=4000)
        train = gen.labeled_texts(1500)
        test = gen.labeled_texts(400, start=1500)
        base = SentimentPipeline(SentimentConfig.baseline())
        base.train(train)
        opt = SentimentPipeline(SentimentConfig.optimized())
        opt.train(train)
        assert opt.evaluate(test) >= base.evaluate(test)

    def test_mapreduce_training_matches_single_process(self):
        corpus = ReviewGenerator(seed=4, capacity=2000).labeled_texts(400)
        single = SentimentPipeline(SentimentConfig.optimized())
        single.train(corpus)
        with JobRunner(max_workers=4) as runner:
            distributed = SentimentPipeline(SentimentConfig.optimized())
            distributed.train_mapreduce(corpus, runner=runner)
        probe = ReviewGenerator(seed=4, capacity=2000).labeled_texts(100, start=400)
        for text, _label in probe:
            assert single.classify(text) == distributed.classify(text)

    def test_score_matches_classify(self):
        corpus = ReviewGenerator(seed=5, capacity=2000).labeled_texts(500)
        pipeline = SentimentPipeline()
        pipeline.train(corpus)
        for text, _ in corpus[:50]:
            score = pipeline.score(text)
            assert (score >= 0.5) == (pipeline.classify(text) == 1)
