"""Differential oracle suite for threshold-algorithm top-k early
termination (:mod:`repro.core.modules.topk`).

The contract under test: with ``TopKConfig(enabled=True)``, every
personalized answer is **byte-identical** to the exhaustive coprocessor
path (same fan-out, same float fold orders — scores compare with ``==``,
not approx), and matches the no-coprocessor
``search_personalized_client_side`` baseline in ranked order and counts
(scores approx there, as in ``test_routing`` — the single-machine
baseline folds grades in a different float-addition grouping).

The randomized sections replay 200+ seeded workloads — varying k,
friend sets, time windows, spatial/keyword filters, sort orders, cache
on/off/warm/stale, and injected faults — because the failure mode of a
pruning optimization is *silently wrong answers*.

Interaction regressions ride along: a proof-pruned region must never
appear in ``missing_regions`` or lower coverage (it is complete *by
proof*), deadline aborts and proof aborts must be distinguishable in
traces, and a seqid bump must stale-out cached partials under top-k
exactly as it does on the exhaustive path.
"""

import itertools
import random

import pytest

from repro.config import ClusterConfig, FaultsConfig, TopKConfig
from repro.core.faults import FaultInjector
from repro.core.modules.query_answering import (
    QueryAnsweringModule,
    SearchQuery,
)
from repro.core.modules.topk import TopKPartialStream
from repro.core.repositories.poi import POI, POIRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.core.tracing import Tracer
from repro.errors import DegradedResultWarning
from repro.geo import BoundingBox
from repro.hbase import HBaseCluster, RegionScanCache
from repro.hbase.cancellation import (
    CancellationToken,
    REASON_DEADLINE,
    REASON_TOPK_PROOF,
)
import repro.hbase.region as region_mod
from repro.sqlstore import SqlEngine

NUM_USERS = 30
NUM_POIS = 40
NUM_REGIONS = 8

#: Fixed POI universe: id -> (name, lat, lon, keywords).
POIS = {
    pid: (
        "poi-%d" % pid,
        37.90 + (pid % 13) * 0.01,
        23.70 + (pid % 7) * 0.01,
        ("cafe",) if pid % 3 else ("museum", "history"),
    )
    for pid in range(1, NUM_POIS + 1)
}

BBOXES = (
    None,
    BoundingBox(37.90, 23.70, 37.97, 23.74),
    BoundingBox(37.95, 23.72, 38.10, 23.90),
)

KEYWORD_CHOICES = ((), ("cafe",), ("museum",), ("history", "cafe"))


def fingerprint(result):
    """The caller-observable rows, bit-exact (no approx on scores)."""
    return [
        (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
        for p in result.pois
    ]


def approx_rows(result):
    """Ranked rows with approx scores, for the client-side baseline
    whose float fold grouping legitimately differs."""
    return [
        (p.poi_id, pytest.approx(p.score), p.visit_count)
        for p in result.pois
    ]


class Stack:
    """Cluster + repositories + query module with togglable top-k."""

    def __init__(
        self,
        data_seed,
        cache=False,
        faults_config=None,
        injector=None,
        tracer=None,
        batch_size=16,
    ):
        # Region ids are allocated from a module-global counter; reset it
        # so paired stacks see identical region ids (the fault injector
        # keys its decisions on them).
        region_mod._region_ids = itertools.count()
        self.cluster = HBaseCluster(
            ClusterConfig(num_nodes=4, regions_per_table=NUM_REGIONS),
            faults_config=faults_config,
        )
        if injector is not None:
            self.cluster.attach_fault_injector(injector)
        self.pois = POIRepository(SqlEngine())
        for pid, (name, lat, lon, keywords) in POIS.items():
            self.pois.add(
                POI(poi_id=pid, name=name, lat=lat, lon=lon,
                    keywords=keywords, category="test")
            )
        self.visits = VisitsRepository(self.cluster, num_regions=NUM_REGIONS)
        self.scan_cache = RegionScanCache(max_entries=4096) if cache else None
        if self.scan_cache is not None:
            self.cluster.attach_scan_cache(self.scan_cache)
        self.topk_cfg = TopKConfig(enabled=True, batch_size=batch_size)
        self.qa = QueryAnsweringModule(
            self.pois, self.visits, tracer=tracer, topk_config=self.topk_cfg
        )
        self._ts = 0
        self.load(data_seed)

    def load(self, seed, per_user=30):
        rng = random.Random(seed)
        for uid in range(1, NUM_USERS + 1):
            for _ in range(per_user):
                self.write(rng, uid)

    def write(self, rng, uid=None):
        self._ts += 1
        pid = rng.choice(list(POIS))
        name, lat, lon, keywords = POIS[pid]
        self.visits.store(
            VisitStruct(
                user_id=uid or rng.randrange(1, NUM_USERS + 1),
                poi_id=pid,
                timestamp=self._ts,
                # Arbitrary float grades on purpose: sums are inexact, so
                # any fold-order difference between the pruned and
                # exhaustive paths would surface as a bit mismatch.
                grade=rng.uniform(0.0, 5.0),
                poi_name=name,
                lat=lat,
                lon=lon,
                keywords=keywords,
            )
        )

    def random_query(self, rng):
        k = rng.choice((1, 2, 3, 5, 10, 25))
        width = rng.randrange(3, NUM_USERS + 1)
        friends = tuple(rng.sample(range(1, NUM_USERS + 1), width))
        since, until = None, None
        if rng.random() < 0.35:
            since = rng.randrange(0, max(1, self._ts))
            until = since + rng.randrange(1, self._ts + 2)
        return SearchQuery(
            bbox=rng.choice(BBOXES),
            keywords=rng.choice(KEYWORD_CHOICES),
            friend_ids=friends,
            since=since,
            until=until,
            sort_by=rng.choice(("interest", "hotness")),
            limit=k,
        )

    def search_topk(self, query):
        self.topk_cfg.enabled = True
        return self.qa.search(query)

    def search_exhaustive(self, query):
        self.topk_cfg.enabled = False
        try:
            return self.qa.search(query)
        finally:
            self.topk_cfg.enabled = True

    def shutdown(self):
        self.cluster.shutdown()


# --------------------------------------------------------------------------
# Randomized differential section: pruned vs exhaustive vs client-side.
# --------------------------------------------------------------------------


class TestTopKOracleDifferential:
    """120 seeded workloads, no cache, no faults."""

    @pytest.mark.parametrize("seed", range(4))
    def test_seeded_workloads(self, seed):
        stack = Stack(data_seed=seed)
        rng = random.Random(1000 + seed)
        avoided_any = False
        try:
            for _ in range(30):
                query = stack.random_query(rng)
                pruned = stack.search_topk(query)
                exhaustive = stack.search_exhaustive(query)
                oracle = stack.qa.search_personalized_client_side(query)
                assert fingerprint(pruned) == fingerprint(exhaustive), query
                assert approx_rows(pruned) == approx_rows(oracle), query
                # The exhaustive run must be untouched by the module.
                assert exhaustive.cells_avoided == 0
                assert exhaustive.regions_pruned_early == 0
                avoided_any |= pruned.cells_avoided > 0
        finally:
            stack.shutdown()
        assert avoided_any, "no workload ever avoided a decode"

    def test_large_case_always_avoids_cells(self):
        """The headline case — small k over every friend — must prune."""
        stack = Stack(data_seed=99)
        try:
            for sort_by in ("interest", "hotness"):
                for k in (1, 5, 10):
                    query = SearchQuery(
                        friend_ids=tuple(range(1, NUM_USERS + 1)),
                        sort_by=sort_by,
                        limit=k,
                    )
                    pruned = stack.search_topk(query)
                    exhaustive = stack.search_exhaustive(query)
                    assert fingerprint(pruned) == fingerprint(exhaustive)
                    assert pruned.cells_avoided > 0
                    assert pruned.cells_decoded < exhaustive.cells_decoded
        finally:
            stack.shutdown()

    def test_batch_size_never_changes_the_answer(self):
        """Batch size trades rounds for pruning — never correctness."""
        baseline = Stack(data_seed=7)
        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, NUM_USERS + 1)), limit=5
            )
            want = fingerprint(baseline.search_exhaustive(query))
            for batch in (1, 2, 7, 64, 1024):
                stack = Stack(data_seed=7, batch_size=batch)
                try:
                    assert fingerprint(stack.search_topk(query)) == want
                finally:
                    stack.shutdown()
        finally:
            baseline.shutdown()


# --------------------------------------------------------------------------
# Cache section: cold, warm (exhaustive-seeded), and stale entries.
# --------------------------------------------------------------------------


class TestTopKOracleWithCache:
    """60 cache workloads: cold / warm / post-write staleness."""

    @pytest.mark.parametrize("seed", range(2))
    def test_cold_and_warm_cache_identical(self, seed):
        stack = Stack(data_seed=seed, cache=True)
        rng = random.Random(2000 + seed)
        try:
            for _ in range(10):
                query = stack.random_query(rng)
                # Exhaustive first: populates the scan cache (top-k mode
                # reads the cache but never stores — an entry needs
                # parsed attributes for every POI in the partial, the
                # exact work the mode avoids).
                exhaustive = stack.search_exhaustive(query)
                cold = None
                stack.cluster.scan_cache = None
                try:
                    cold = stack.search_topk(query)
                finally:
                    stack.cluster.scan_cache = stack.scan_cache
                warm = stack.search_topk(query)
                assert fingerprint(cold) == fingerprint(exhaustive), query
                assert fingerprint(warm) == fingerprint(exhaustive), query
                assert warm.cache_hits > 0
                # Cache-seeded attribute memos make warm emission
                # decode-free.
                assert warm.cells_decoded == 0
        finally:
            stack.shutdown()

    def test_seqid_bump_stales_topk_cached_partials(self):
        """A write between queries must invalidate cached partials for
        the top-k path exactly as for the exhaustive one."""
        stack = Stack(data_seed=5, cache=True)
        rng = random.Random(55)
        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, NUM_USERS + 1)), limit=5
            )
            stack.search_exhaustive(query)  # seed every region's cache
            warm = stack.search_topk(query)
            assert warm.cache_hits > 0 and warm.cache_misses == 0
            # Bump every region's seqid with fresh writes.
            for uid in range(1, NUM_USERS + 1):
                stack.write(rng, uid)
            after = stack.search_topk(query)
            assert after.cache_misses > 0
            assert fingerprint(after) == fingerprint(
                stack.search_exhaustive(query)
            )
            assert approx_rows(after) == approx_rows(
                stack.qa.search_personalized_client_side(query)
            )
        finally:
            stack.shutdown()


# --------------------------------------------------------------------------
# Fault section: identical injector decisions, pruned vs exhaustive.
# --------------------------------------------------------------------------


def _paired_fault_stacks(seed, **rates):
    """Two identically-built stacks whose injectors make identical
    decisions (same config seed, same region ids, same fan-out epochs),
    one queried with top-k on and one with it off."""
    stacks = []
    for _ in range(2):
        fcfg = FaultsConfig(enabled=True, seed=seed, **rates)
        stacks.append(
            Stack(
                data_seed=seed,
                faults_config=fcfg,
                injector=FaultInjector(fcfg),
            )
        )
    return stacks


class TestTopKUnderFaults:
    """40 faulted workloads: errors, corruption, lost regions."""

    @pytest.mark.parametrize(
        "seed,rates",
        [
            (11, {"region_error_rate": 0.2}),
            (12, {"corrupt_rate": 0.2}),
            (13, {"region_error_rate": 0.15, "corrupt_rate": 0.15}),
            (14, {"lost_region_fraction": 1.0}),
        ],
    )
    def test_fault_injected_workloads(self, seed, rates):
        import warnings

        topk_stack, plain_stack = _paired_fault_stacks(seed, **rates)
        if "lost_region_fraction" in rates:
            # Region loss needs a node-failure event; stage the same
            # deterministic one on both injectors.
            for stack in (topk_stack, plain_stack):
                stack.cluster.fault_injector.on_node_failed(0, [2, 5])
        rng_a, rng_b = random.Random(seed), random.Random(seed)
        try:
            for _ in range(10):
                query_a = topk_stack.random_query(rng_a)
                query_b = plain_stack.random_query(rng_b)
                assert query_a == query_b  # same workload stream
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DegradedResultWarning)
                    pruned = topk_stack.search_topk(query_a)
                    exhaustive = plain_stack.search_exhaustive(query_b)
                assert fingerprint(pruned) == fingerprint(exhaustive), query_a
                assert pruned.missing_regions == exhaustive.missing_regions
                assert pruned.coverage == exhaustive.coverage
                assert pruned.degraded == exhaustive.degraded
        finally:
            topk_stack.shutdown()
            plain_stack.shutdown()


# --------------------------------------------------------------------------
# Interaction regressions.
# --------------------------------------------------------------------------


def _region_spans(trace):
    out = []

    def walk(node):
        if node["name"] == "region.scan":
            out.append(node)
        for child in node.get("children", ()):
            walk(child)

    walk(trace["root"])
    return out


class TestTopKInteractions:
    def test_pruned_region_is_not_missing_and_keeps_coverage(self):
        """Complete-by-proof: early-terminated regions are exact, so
        they never degrade the answer."""
        stack = Stack(data_seed=21)
        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, NUM_USERS + 1)), limit=1
            )
            result = stack.search_topk(query)
            assert result.regions_pruned_early > 0
            assert result.missing_regions == ()
            assert result.coverage == 1.0
            assert result.degraded is False
        finally:
            stack.shutdown()

    def test_pruned_under_degraded_mode(self):
        """With a region genuinely lost, proof-pruned regions still stay
        out of ``missing_regions`` — only the lost one degrades."""
        fcfg = FaultsConfig(
            enabled=True, seed=31, lost_region_fraction=1.0
        )
        stack = Stack(
            data_seed=31, faults_config=fcfg, injector=FaultInjector(fcfg)
        )
        # Deterministic region loss: a node fails and region 3's data
        # dies with it until recovery.
        stack.cluster.fault_injector.on_node_failed(0, [3])
        import warnings

        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, NUM_USERS + 1)), limit=1
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedResultWarning)
                pruned = stack.search_topk(query)
                exhaustive = stack.search_exhaustive(query)
            assert pruned.degraded
            assert pruned.missing_regions == exhaustive.missing_regions
            assert pruned.coverage == exhaustive.coverage
            # Proof-pruning happened on top of the loss, and the pruned
            # regions are disjoint from the missing ones by construction
            # (a lost region never produced a stream to prune).
            assert pruned.regions_pruned_early > 0
            assert fingerprint(pruned) == fingerprint(exhaustive)
        finally:
            stack.shutdown()

    def test_proof_abort_vs_deadline_abort_distinguishable_in_traces(self):
        """A proof abort tags ``pruned_early``; a deadline abort tags
        ``cancel_reason=deadline`` — operators can tell them apart."""
        tracer = Tracer(enabled=True)
        stack = Stack(data_seed=41, tracer=tracer)
        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, NUM_USERS + 1)), limit=1
            )
            result = stack.search_topk(query)
            assert result.regions_pruned_early > 0
            trace = tracer.last_trace()
            spans = _region_spans(trace)
            pruned_tags = [
                s["tags"] for s in spans if s["tags"].get("pruned_early")
            ]
            assert len(pruned_tags) == result.regions_pruned_early
            for tags in pruned_tags:
                # Proof aborts never masquerade as deadline cancels.
                assert tags.get("cancel_reason") != REASON_DEADLINE
                assert "topk_avoided" in tags
        finally:
            stack.shutdown()

    def test_deadline_abort_marks_stream_aborted_not_pruned(self):
        """Unit-level distinguishability on the stream itself: the same
        short-circuit mechanism records *why* emission stopped."""
        items = [(pid, float(10 - pid), 1) for pid in range(1, 6)]
        aggregates = {pid: (gs, cnt) for pid, gs, cnt in items}
        attrs = {pid: ("p%d" % pid, 0.0, 0.0, ()) for pid, _, _ in items}

        proof = TopKPartialStream(
            region_id=0, items=list(items), aggregates=aggregates,
            raw={}, attrs=dict(attrs), top_k=1, hotness=False, batch=2,
        )
        proof.short_circuit(REASON_TOPK_PROOF)
        assert proof.pruned and not proof.aborted
        assert proof.prune_token.reason == REASON_TOPK_PROOF

        deadline = TopKPartialStream(
            region_id=1, items=list(items), aggregates=aggregates,
            raw={}, attrs=dict(attrs), top_k=1, hotness=False, batch=2,
        )
        deadline.short_circuit(REASON_DEADLINE)
        assert deadline.aborted and not deadline.pruned
        assert deadline.prune_token.reason == REASON_DEADLINE

    def test_deadline_mid_emission_degrades_with_aborted_regions(self):
        """A token tripping during emission aborts the merge: discovered
        candidates are kept, unfinished regions land in missing."""
        from repro.core.modules.query_answering import VisitScanCoprocessor

        streams = []
        for region_id in range(3):
            items = [
                (pid, float(50 - pid), 1) for pid in range(1, 40)
            ]
            token = CancellationToken(
                deadline_ms=1.0, cost_per_record_ms=1.0
            )
            streams.append(
                TopKPartialStream(
                    region_id=region_id,
                    items=items,
                    aggregates={p: (g, c) for p, g, c in items},
                    raw={},
                    attrs={
                        p: ("p%d" % p, 0.0, 0.0, ()) for p, _, _ in items
                    },
                    top_k=5,
                    hotness=False,
                    batch=4,
                    cells_scanned=100,  # already over the 1ms budget
                    deadline_token=token,
                )
            )
        merged, stats = VisitScanCoprocessor().stream_merge(streams)
        assert stats["aborted_regions"] == [0, 1, 2]
        assert stats["pruned_regions"] == 0
        for stream in streams:
            assert stream.aborted
            assert stream.prune_token.reason == REASON_DEADLINE

    def test_brownout_per_region_limit_disables_topk(self):
        """A truncated partial has no sound bound: brownout shaping must
        fall back to the exhaustive (limit-truncated) path."""
        stack = Stack(data_seed=61)
        try:
            routed = stack.qa._route_query(
                SearchQuery(friend_ids=(1, 2, 3), limit=5),
                per_region_limit=7,
            )
            for request in routed.values():
                assert request.top_k == 0
                assert request.per_region_limit == 7
            routed = stack.qa._route_query(
                SearchQuery(friend_ids=(1, 2, 3), limit=5)
            )
            for request in routed.values():
                assert request.top_k == 5
        finally:
            stack.shutdown()

    def test_explain_reports_topk_profile(self):
        stack = Stack(data_seed=71)
        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, NUM_USERS + 1)), limit=2
            )
            stack.topk_cfg.enabled = True
            plan = stack.qa.explain_personalized(query)
            assert plan["topk"]["enabled"]
            assert plan["topk"]["rounds"] > 0
            assert plan["topk"]["cells_avoided"] > 0
            assert plan["topk"]["pruned_regions"] > 0
            stack.topk_cfg.enabled = False
            plan_off = stack.qa.explain_personalized(query)
            assert not plan_off["topk"]["enabled"]
            assert plan_off["topk"]["cells_avoided"] == 0
        finally:
            stack.shutdown()
