"""Tests for the synthetic workload generators."""

import random
import statistics

import pytest

from repro.config import GREECE_BBOX
from repro.datagen import (
    POI_CATEGORIES,
    ReviewGenerator,
    generate_pois,
    generate_traces,
    generate_users,
    generate_visits,
    visits_per_user,
)
from repro.errors import ValidationError
from repro.geo import BoundingBox, GeoPoint


class TestPOIs:
    def test_count_and_determinism(self):
        a = generate_pois(count=500, seed=3)
        b = generate_pois(count=500, seed=3)
        assert len(a) == 500
        assert a == b
        assert generate_pois(count=100, seed=4) != generate_pois(count=100, seed=5)

    def test_all_inside_greece_bbox(self):
        box = BoundingBox.from_tuple(GREECE_BBOX)
        for poi in generate_pois(count=800, seed=1):
            assert box.contains_coords(poi.lat, poi.lon)

    def test_ids_unique_and_sequential(self):
        pois = generate_pois(count=200, seed=2)
        assert [p.poi_id for p in pois] == list(range(1, 201))

    def test_keywords_match_category(self):
        for poi in generate_pois(count=300, seed=6):
            allowed = set(POI_CATEGORIES[poi.category])
            assert set(poi.keywords) <= allowed
            assert len(poi.keywords) >= 2

    def test_athens_densest(self):
        pois = generate_pois(count=2000, seed=7)
        athens = sum(1 for p in pois if p.city == "Athens")
        assert athens > 0.3 * len(pois)

    def test_invalid_count(self):
        with pytest.raises(ValidationError):
            generate_pois(count=0)


class TestUsers:
    def test_network_prefixes(self):
        assert generate_users(5, network="facebook")[0].network_user_id == "fb_1"
        assert generate_users(5, network="twitter")[0].network_user_id == "tw_1"
        assert generate_users(5, network="foursquare")[0].network_user_id == "fq_1"

    def test_ids_embed_user_id(self):
        users = generate_users(50, network="facebook")
        for u in users:
            assert u.network_user_id == "fb_%d" % u.user_id


class TestVisits:
    def test_visit_count_distribution_matches_paper(self):
        rng = random.Random(8)
        counts = [visits_per_user(rng) for _ in range(5000)]
        mean = statistics.mean(counts)
        std = statistics.stdev(counts)
        assert 160 <= mean <= 180  # paper: mu = 170
        assert 85 <= std <= 105  # sigma = 101 minus truncation-at-0 loss

    def test_generate_visits_fields(self, small_pois):
        visits = list(generate_visits([1, 2, 3], small_pois, seed=5))
        assert visits  # three users, ~170 each
        poi_ids = {p.poi_id for p in small_pois}
        for v in visits[:200]:
            assert v.poi_id in poi_ids
            assert 0.0 <= v.grade <= 1.0
            assert 1_400_000_000 <= v.timestamp < 1_430_000_000
            assert v.poi_name

    def test_repertoire_limits_poi_spread(self, small_pois):
        visits = [v for v in generate_visits([1], small_pois, seed=5)]
        distinct = {v.poi_id for v in visits}
        assert len(distinct) <= 40

    def test_no_pois_rejected(self):
        with pytest.raises(ValidationError):
            list(generate_visits([1], [], seed=1))


class TestReviews:
    def test_deterministic_by_index(self):
        gen = ReviewGenerator(seed=2)
        assert gen.document(5) == gen.document(5)
        assert gen.document(5) != gen.document(6)

    def test_prefix_property(self):
        gen = ReviewGenerator(seed=2)
        small = gen.generate(10)
        large = gen.generate(20)
        assert large[:10] == small

    def test_labels_binarized_consistently(self):
        for r in ReviewGenerator(seed=3).generate(300):
            assert r.label in (0, 1)
            assert r.rating in (1, 2, 4, 5)
            assert (r.rating >= 4) == (r.label == 1)

    def test_classes_roughly_balanced(self):
        reviews = ReviewGenerator(seed=4).generate(2000)
        positive = sum(r.label for r in reviews)
        assert 0.4 < positive / len(reviews) < 0.6

    def test_noise_ramps_after_onset(self):
        gen = ReviewGenerator(seed=5, capacity=10_000, noise_onset=0.2,
                              max_noise=0.4)
        early = gen._noise_probability(1000)
        late = gen._noise_probability(9000)
        assert early == pytest.approx(0.04)
        assert late > 0.3

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            ReviewGenerator(capacity=0)
        with pytest.raises(ValidationError):
            ReviewGenerator(noise_onset=1.5)
        with pytest.raises(ValidationError):
            ReviewGenerator(max_noise=0.9)


class TestTraces:
    def test_scenario_composition(self, small_pois):
        scenario = generate_traces(
            user_ids=[1, 2], known_pois=small_pois[:30], num_hotspots=4,
            points_per_hotspot=50, near_poi_points=60, background_points=80,
            seed=3,
        )
        assert len(scenario.hotspot_centers) == 4
        expected = 4 * 50 + scenario.near_known_poi_count + 80
        assert len(scenario.points) == expected

    def test_hotspots_away_from_known_pois(self, small_pois):
        scenario = generate_traces(
            user_ids=[1], known_pois=small_pois[:30], num_hotspots=4, seed=3
        )
        for hotspot in scenario.hotspot_centers:
            for poi in small_pois[:30]:
                assert hotspot.distance_m(GeoPoint(poi.lat, poi.lon)) >= 400.0

    def test_requires_users(self):
        with pytest.raises(ValidationError):
            generate_traces(user_ids=[], known_pois=[])
