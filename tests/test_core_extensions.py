"""Tests for the core extensions: aggregates, evaluation, simplify,
scheduler, monitoring."""

import pytest

from repro.config import PlatformConfig
from repro.core import MoDisSENSE
from repro.core.monitoring import (
    InstrumentedQueryAnswering,
    LatencyHistogram,
    PlatformMetrics,
)
from repro.core.scheduler import PeriodicScheduler, build_platform_scheduler
from repro.errors import QueryError, ValidationError
from repro.geo import GeoPoint, simplify_trace
from repro.sqlstore import (
    Aggregate,
    AggregateQuery,
    Column,
    ColumnType,
    Eq,
    SqlEngine,
    TableSchema,
    execute_aggregate,
)
from repro.text import ConfusionMatrix, evaluate_classifier


# ---------------------------------------------------------------- aggregates


@pytest.fixture()
def agg_engine():
    eng = SqlEngine()
    eng.create_table(
        TableSchema(
            name="pois",
            columns=[
                Column("poi_id", ColumnType.INTEGER),
                Column("category", ColumnType.TEXT),
                Column("interest", ColumnType.FLOAT, nullable=True),
            ],
            primary_key="poi_id",
        )
    )
    rows = [
        (1, "cafe", 0.8),
        (2, "cafe", 0.6),
        (3, "bar", 0.9),
        (4, "bar", None),
        (5, "museum", 0.4),
    ]
    for poi_id, cat, interest in rows:
        eng.insert("pois", {"poi_id": poi_id, "category": cat,
                            "interest": interest})
    return eng


class TestAggregates:
    def test_global_count_and_avg(self, agg_engine):
        out = execute_aggregate(
            agg_engine,
            AggregateQuery(
                table="pois",
                aggregates=[Aggregate("count"), Aggregate("avg", "interest")],
            ),
        )
        assert len(out) == 1
        assert out[0]["count"] == 5
        # NULL interest excluded from the average, SQL-style.
        assert out[0]["avg_interest"] == pytest.approx((0.8 + 0.6 + 0.9 + 0.4) / 4)

    def test_group_by(self, agg_engine):
        out = execute_aggregate(
            agg_engine,
            AggregateQuery(
                table="pois",
                aggregates=[Aggregate("count"), Aggregate("max", "interest")],
                group_by=["category"],
            ),
        )
        by_cat = {row["category"]: row for row in out}
        assert by_cat["cafe"]["count"] == 2
        assert by_cat["cafe"]["max_interest"] == 0.8
        assert by_cat["bar"]["count"] == 2
        assert by_cat["bar"]["max_interest"] == 0.9

    def test_where_and_having(self, agg_engine):
        out = execute_aggregate(
            agg_engine,
            AggregateQuery(
                table="pois",
                aggregates=[Aggregate("count")],
                group_by=["category"],
                having=lambda row: row["count"] >= 2,
            ),
        )
        assert {row["category"] for row in out} == {"cafe", "bar"}

    def test_min_sum_alias(self, agg_engine):
        out = execute_aggregate(
            agg_engine,
            AggregateQuery(
                table="pois",
                aggregates=[
                    Aggregate("min", "interest", alias="lowest"),
                    Aggregate("sum", "interest"),
                ],
                where=Eq("category", "cafe"),
            ),
        )
        assert out[0]["lowest"] == 0.6
        assert out[0]["sum_interest"] == pytest.approx(1.4)

    def test_empty_table_global_aggregate(self):
        eng = SqlEngine()
        eng.create_table(
            TableSchema(
                name="t",
                columns=[Column("id", ColumnType.INTEGER)],
                primary_key="id",
            )
        )
        out = execute_aggregate(
            eng, AggregateQuery(table="t", aggregates=[Aggregate("count")])
        )
        assert out == [{"count": 0}]

    def test_invalid_aggregates(self):
        with pytest.raises(QueryError):
            Aggregate("median", "x")
        with pytest.raises(QueryError):
            Aggregate("avg")  # needs a column
        with pytest.raises(QueryError):
            AggregateQuery(table="t", aggregates=[])


# ---------------------------------------------------------------- evaluation


class TestEvaluation:
    def test_confusion_matrix_metrics(self):
        m = ConfusionMatrix(true_positive=8, false_positive=2,
                            true_negative=7, false_negative=3)
        assert m.total == 20
        assert m.accuracy == pytest.approx(0.75)
        assert m.precision == pytest.approx(0.8)
        assert m.recall == pytest.approx(8 / 11)
        assert m.specificity == pytest.approx(7 / 9)
        assert 0 < m.f1 < 1
        assert "accuracy=0.750" in m.describe()

    def test_degenerate_matrix(self):
        m = ConfusionMatrix(0, 0, 5, 0)
        assert m.precision == 0.0
        assert m.recall == 0.0
        assert m.f1 == 0.0

    def test_evaluate_classifier(self):
        classify = lambda text: 1 if "good" in text else 0
        docs = [("good one", 1), ("good fake", 0), ("bad one", 0),
                ("missed good thing", 1), ("plain", 1)]
        m = evaluate_classifier(classify, docs)
        assert m.true_positive == 2
        assert m.false_positive == 1
        assert m.true_negative == 1
        assert m.false_negative == 1

    def test_empty_set_rejected(self):
        with pytest.raises(ValidationError):
            evaluate_classifier(lambda t: 1, [])

    def test_invalid_label_rejected(self):
        with pytest.raises(ValidationError):
            evaluate_classifier(lambda t: 1, [("x", 2)])


# ------------------------------------------------------------------ simplify


class TestSimplifyTrace:
    def test_collinear_points_collapse(self):
        points = [GeoPoint(37.0 + i * 0.001, 23.0) for i in range(10)]
        out = simplify_trace(points, tolerance_m=5.0)
        assert out == [points[0], points[-1]]

    def test_corner_preserved(self):
        leg1 = [GeoPoint(37.0 + i * 0.001, 23.0) for i in range(5)]
        leg2 = [GeoPoint(37.004, 23.0 + i * 0.001) for i in range(1, 5)]
        points = leg1 + leg2
        out = simplify_trace(points, tolerance_m=10.0)
        assert points[4] in out  # the corner survives
        assert len(out) < len(points)

    def test_short_inputs_unchanged(self):
        p = [GeoPoint(1, 1), GeoPoint(2, 2)]
        assert simplify_trace(p, 10.0) == p
        assert simplify_trace(p[:1], 10.0) == p[:1]
        assert simplify_trace([], 10.0) == []

    def test_error_bound_respected(self):
        import random

        from repro.geo.simplify import _perpendicular_distance_m

        rng = random.Random(4)
        points = [
            GeoPoint(37.0 + i * 0.0005 + rng.gauss(0, 0.00002),
                     23.0 + rng.gauss(0, 0.00002))
            for i in range(60)
        ]
        tolerance = 15.0
        out = simplify_trace(points, tolerance_m=tolerance)
        kept = set((p.lat, p.lon) for p in out)
        # Every dropped point is within tolerance of the kept polyline.
        for p in points:
            if (p.lat, p.lon) in kept:
                continue
            best = min(
                _perpendicular_distance_m(p, a, b)
                for a, b in zip(out, out[1:])
            )
            assert best <= tolerance + 0.5

    def test_invalid_tolerance(self):
        with pytest.raises(ValidationError):
            simplify_trace([], 0.0)


# ----------------------------------------------------------------- scheduler


class TestPeriodicScheduler:
    def test_fires_on_schedule(self):
        fired = []
        sched = PeriodicScheduler()
        sched.register("job", period_s=10.0, callback=fired.append)
        log = sched.advance_to(35.0)
        assert fired == [10.0, 20.0, 30.0]
        assert [t for t, _n, _r in log] == [10.0, 20.0, 30.0]
        assert sched.job("job").fire_count == 3

    def test_catch_up_semantics(self):
        fired = []
        sched = PeriodicScheduler()
        sched.register("job", period_s=5.0, callback=fired.append)
        sched.advance_to(4.0)
        assert fired == []
        sched.advance_to(21.0)
        assert fired == [5.0, 10.0, 15.0, 20.0]

    def test_multiple_jobs_in_time_order(self):
        order = []
        sched = PeriodicScheduler()
        sched.register("fast", 3.0, lambda now: order.append(("fast", now)))
        sched.register("slow", 7.0, lambda now: order.append(("slow", now)))
        sched.advance_to(10.0)
        assert order == [
            ("fast", 3.0), ("fast", 6.0), ("slow", 7.0), ("fast", 9.0),
        ]

    def test_disable_enable(self):
        fired = []
        sched = PeriodicScheduler()
        sched.register("job", 5.0, fired.append)
        sched.set_enabled("job", False)
        sched.advance_to(20.0)
        assert fired == []
        sched.set_enabled("job", True)
        sched.advance_to(40.0)
        assert fired  # resumes

    def test_time_cannot_reverse(self):
        sched = PeriodicScheduler(start_at=100.0)
        with pytest.raises(ValidationError):
            sched.advance_to(50.0)

    def test_duplicate_name_rejected(self):
        sched = PeriodicScheduler()
        sched.register("job", 1.0, lambda now: None)
        with pytest.raises(ValidationError):
            sched.register("job", 1.0, lambda now: None)

    def test_platform_scheduler_wiring(self):
        platform = MoDisSENSE(PlatformConfig.small())
        try:
            sched = build_platform_scheduler(platform, start_at=0.0)
            names = {
                "data_collection", "hotin_update", "event_detection",
            }
            assert {sched.job(n).name for n in names} == names
            # One collection period passes: the job runs (on an empty
            # platform it reports zero users).
            log = sched.advance_by(
                platform.config.jobs.data_collection_period_s
            )
            assert any(name == "data_collection" for _t, name, _r in log)
            report = sched.job("data_collection").last_result
            assert report.users_scanned == 0
        finally:
            platform.shutdown()


# ---------------------------------------------------------------- monitoring


class TestMonitoring:
    def test_histogram_percentiles(self):
        hist = LatencyHistogram()
        for v in range(1, 101):
            hist.record(float(v))
        assert hist.count == 100
        assert hist.mean == pytest.approx(50.5)
        assert hist.percentile(50) == pytest.approx(50.0, abs=1)
        assert hist.percentile(95) == pytest.approx(95.0, abs=1)
        assert hist.max_value == 100.0

    def test_histogram_decimation_keeps_shape(self):
        hist = LatencyHistogram(max_samples=100)
        for v in range(1000):
            hist.record(float(v))
        assert hist.count == 1000
        assert 400 < hist.percentile(50) < 600

    def test_histogram_validation(self):
        with pytest.raises(ValidationError):
            LatencyHistogram(max_samples=5)
        hist = LatencyHistogram()
        with pytest.raises(ValidationError):
            hist.record(-1.0)
        with pytest.raises(ValidationError):
            hist.percentile(0.0)

    def test_metrics_snapshot(self):
        metrics = PlatformMetrics()
        metrics.increment("queries", 3)
        metrics.record_latency("q", 5.0)
        snap = metrics.snapshot()
        assert snap["counters"]["queries"] == 3
        assert snap["latencies"]["q"]["count"] == 1

    def test_instrumented_query_answering(self, small_platform, small_pois):
        from repro import SearchQuery
        from repro.core.repositories.visits import VisitStruct

        small_platform.load_pois(small_pois[:50])
        small_platform.visits_repository.store(
            VisitStruct(user_id=1, poi_id=1, timestamp=10, grade=0.9,
                        poi_name="A", lat=37.0, lon=23.0)
        )
        wrapped = InstrumentedQueryAnswering(small_platform.query_answering)
        wrapped.search(SearchQuery(friend_ids=(1,)))
        wrapped.search(SearchQuery(sort_by="hotness"))
        snap = wrapped.metrics.snapshot()
        assert snap["counters"]["queries.personalized"] == 1
        assert snap["counters"]["queries.non_personalized"] == 1
        assert snap["latencies"]["query.personalized"]["count"] == 1
        # Query-path profiling counters flow through the wrapper.
        assert snap["counters"]["cells.merged"] == 1
        assert snap["counters"]["cells.decoded"] == 1
        assert snap["counters"]["regions.used"] == 1
        regions = len(small_platform.visits_repository.table.regions)
        assert snap["counters"]["regions.pruned"] == regions - 1
        # Delegation still works for untracked attributes.
        assert wrapped.pois is small_platform.poi_repository

    def test_personalized_latency_labeled_by_fanout_width(
        self, small_platform, small_pois
    ):
        from repro import SearchQuery
        from repro.core.repositories.visits import VisitStruct

        small_platform.load_pois(small_pois[:50])
        small_platform.visits_repository.store(
            VisitStruct(user_id=1, poi_id=1, timestamp=10, grade=0.9,
                        poi_name="A", lat=37.0, lon=23.0)
        )
        result = small_platform.query_answering.search(
            SearchQuery(friend_ids=(1,))
        )
        snap = small_platform.metrics.snapshot()
        labeled = "query.personalized{regions=%d}" % result.regions_used
        assert snap["latencies"][labeled]["count"] == 1
        # The unlabeled series records the same traffic in aggregate.
        assert snap["latencies"]["query.personalized"]["count"] == 1


class TestPercentileNearestRank:
    """Nearest-rank boundary behaviour on tiny sample sets (the seed's
    ``round()`` indexing made ``percentile(50)`` of ``[1, 2, 3, 4]``
    depend on banker's rounding)."""

    @staticmethod
    def build(values):
        hist = LatencyHistogram()
        for v in values:
            hist.record(float(v))
        return hist

    def test_documented_example(self):
        hist = self.build([1, 2, 3, 4])
        # rank = ceil(0.5 * 4) = 2 -> second smallest.
        assert hist.percentile(50) == 2.0
        assert hist.percentile(95) == 4.0
        assert hist.percentile(99) == 4.0
        assert hist.percentile(100) == 4.0
        # Low percentiles clamp at the smallest sample.
        assert hist.percentile(1) == 1.0

    def test_single_sample_returns_it_for_every_p(self):
        hist = self.build([42.5])
        for p in (1, 50, 95, 99, 100):
            assert hist.percentile(p) == 42.5

    def test_two_and_three_samples(self):
        two = self.build([10, 20])
        assert two.percentile(50) == 10.0  # rank ceil(1.0) = 1
        assert two.percentile(51) == 20.0  # rank ceil(1.02) = 2
        assert two.percentile(99) == 20.0
        three = self.build([5, 6, 7])
        assert three.percentile(50) == 6.0
        assert three.percentile(95) == 7.0

    def test_unordered_input_is_sorted(self):
        hist = self.build([9, 1, 5, 3, 7])
        assert hist.percentile(50) == 5.0
        assert hist.percentile(20) == 1.0

    def test_empty_histogram_is_zero(self):
        assert LatencyHistogram().percentile(50) == 0.0


class TestMetricsThreadSafety:
    """The registry is hammered from executor threads on the Figure-3
    concurrency path; lost updates showed up as drifting counters."""

    def test_concurrent_increments_are_exact(self):
        import threading

        metrics = PlatformMetrics()
        threads_n, per_thread = 8, 2000
        barrier = threading.Barrier(threads_n)

        def hammer(tid):
            barrier.wait()  # maximize interleaving
            for i in range(per_thread):
                metrics.increment("queries.personalized")
                metrics.increment("records.scanned", 3)
                metrics.increment("by_thread", labels={"tid": tid})
                metrics.record_latency("query.personalized", float(i % 50))
                metrics.set_gauge("last_tid", tid)

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total = threads_n * per_thread
        assert metrics.counter("queries.personalized") == total
        assert metrics.counter("records.scanned") == 3 * total
        for tid in range(threads_n):
            assert metrics.counter("by_thread", labels={"tid": tid}) == per_thread
        hist = metrics.histogram("query.personalized")
        assert hist.count == total
        expected_total = threads_n * sum(float(i % 50) for i in range(per_thread))
        assert hist.total == pytest.approx(expected_total)
        assert metrics.gauge("last_tid") in range(threads_n)

    def test_concurrent_histogram_records_are_exact(self):
        import threading

        hist = LatencyHistogram(max_samples=100)
        threads_n, per_thread = 6, 3000

        def hammer():
            for i in range(per_thread):
                hist.record(float(i))

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == threads_n * per_thread
        assert hist.max_value == float(per_thread - 1)
        assert hist.total == pytest.approx(
            threads_n * per_thread * (per_thread - 1) / 2.0
        )
        # The reservoir stayed within bounds and percentiles still work.
        assert 0.0 <= hist.percentile(50) <= per_thread

    def test_batch_executor_path_counts_exactly(self, small_platform, small_pois):
        """End-to-end regression: ``search_personalized_batch`` fans out
        across executor threads; counter totals must be exact."""
        from repro import SearchQuery
        from repro.core.repositories.visits import VisitStruct

        small_platform.load_pois(small_pois[:50])
        for uid in range(1, 9):
            small_platform.visits_repository.store(
                VisitStruct(user_id=uid, poi_id=1 + uid % 5, timestamp=10 + uid,
                            grade=0.9, poi_name="A", lat=37.0, lon=23.0)
            )
        queries = [
            SearchQuery(friend_ids=tuple(range(1, 9))) for _ in range(12)
        ]
        results = small_platform.query_answering.search_personalized_batch(
            queries
        )
        snap = small_platform.metrics.snapshot()
        assert snap["counters"]["queries.personalized"] == 12
        assert snap["counters"]["records.scanned"] == sum(
            r.records_scanned for r in results
        )
        assert snap["latencies"]["query.personalized"]["count"] == 12


class TestPrometheusExposition:
    def test_counter_gauge_summary_rendering(self):
        metrics = PlatformMetrics()
        metrics.increment("queries.personalized", 7)
        metrics.increment("api.requests", 2, labels={"endpoint": "search"})
        metrics.set_gauge("jobs.active", 3)
        metrics.record_latency("query.personalized", 10.0)
        metrics.record_latency("query.personalized", 20.0)
        text = metrics.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE modissense_queries_personalized_total counter" in lines
        assert "modissense_queries_personalized_total 7" in lines
        assert (
            'modissense_api_requests_total{endpoint="search"} 2' in lines
        )
        assert "modissense_jobs_active 3" in lines
        assert "# TYPE modissense_query_personalized_ms summary" in lines
        assert (
            'modissense_query_personalized_ms{quantile="0.5"} 10' in lines
        )
        assert "modissense_query_personalized_ms_sum 30" in lines
        assert "modissense_query_personalized_ms_count 2" in lines
        assert text.endswith("\n")

    def test_label_escaping_and_name_sanitization(self):
        metrics = PlatformMetrics()
        metrics.increment("weird.name-1", labels={"q": 'say "hi"\nnow'})
        text = metrics.to_prometheus()
        assert 'modissense_weird_name_1_total{q="say \\"hi\\"\\nnow"} 1' in text

    def test_hostile_label_values_roundtrip(self):
        # Regression: backslashes must be escaped FIRST (a single-pass
        # translation), or 'a\nb' -> 'a\\nb' -> double-mangled output.
        metrics = PlatformMetrics()
        hostile = 'back\\slash "quote"\nnewline\\n'
        metrics.increment("evil", labels={"v": hostile})
        text = metrics.to_prometheus()
        assert (
            'modissense_evil_total{v="back\\\\slash \\"quote\\"'
            '\\nnewline\\\\n"} 1' in text
        )
        # Parse it back the way a scraper would: unescape and compare.
        import re

        match = re.search(r'\{v="((?:[^"\\]|\\.)*)"\}', text)
        assert match is not None
        unescaped = (
            match.group(1)
            .replace("\\\\", "\x00")
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\x00", "\\")
        )
        assert unescaped == hostile

    def test_lone_backslash_label(self):
        metrics = PlatformMetrics()
        metrics.increment("evil", labels={"v": "\\"})
        assert 'v="\\\\"' in metrics.to_prometheus()

    def test_non_finite_gauge_values_render_as_tokens(self):
        # Regression: int(nan) raised and crashed the whole exposition.
        metrics = PlatformMetrics()
        metrics.set_gauge("weird.nan", float("nan"))
        metrics.set_gauge("weird.posinf", float("inf"))
        metrics.set_gauge("weird.neginf", float("-inf"))
        text = metrics.to_prometheus()
        assert "modissense_weird_nan NaN" in text
        assert "modissense_weird_posinf +Inf" in text
        assert "modissense_weird_neginf -Inf" in text

    def test_empty_registry_renders_empty(self):
        assert PlatformMetrics().to_prometheus() == ""
