"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.config import ClusterConfig, PlatformConfig
from repro.core import MoDisSENSE
from repro.core.repositories.visits import VisitStruct
from repro.datagen import ReviewGenerator, generate_pois


@pytest.fixture()
def small_platform():
    """A 4-node, 8-region platform; shut down after the test."""
    platform = MoDisSENSE(PlatformConfig.small())
    yield platform
    platform.shutdown()


@pytest.fixture(scope="session")
def small_pois():
    """300 deterministic POIs for tests that only read them."""
    return generate_pois(count=300, seed=11)


@pytest.fixture(scope="session")
def review_corpus():
    """A 2000-document labelled corpus (deterministic)."""
    return ReviewGenerator(seed=5, capacity=4000).labeled_texts(2000)


def make_visits(user_ids, pois, per_user=10, seed=0, t0=1000, t1=2000):
    """Deterministic visit structs for repository tests."""
    rng = random.Random(seed)
    out = []
    for uid in user_ids:
        used = set()
        for _ in range(per_user):
            poi = rng.choice(pois)
            ts = rng.randint(t0, t1 - 1)
            while (ts, poi.poi_id) in used:
                ts = rng.randint(t0, t1 - 1)
            used.add((ts, poi.poi_id))
            out.append(
                VisitStruct(
                    user_id=uid,
                    poi_id=poi.poi_id,
                    timestamp=ts,
                    grade=rng.random(),
                    poi_name=poi.name,
                    lat=poi.lat,
                    lon=poi.lon,
                    keywords=tuple(poi.keywords),
                )
            )
    return out
