"""Oracle-backed consistency suite for the concurrent-query cache layer.

The contract under test: with the region scan cache and the hot-POI
cache enabled, every answer is **byte-identical** to the cache-off
oracle, no matter how writes, flushes, compactions, HotIn refreshes and
queries interleave.  The randomized section replays 200+ seeded
interleavings of those operations and compares every query's cached
answer against a fresh cache-off execution of the same query.

Unit sections pin the individual invalidation mechanisms: seqid bumps on
every mutation kind, TTL expiry, LRU eviction, the maintenance sweep,
node-failure invalidation, and the capture-before-scan stamp that makes
entries racing with writes stale on arrival.
"""

import random

import pytest

from repro.config import ClusterConfig
from repro.core.caching import HotPOICache, SingleFlight
from repro.core.modules.query_answering import (
    QueryAnsweringModule,
    SearchQuery,
)
from repro.core.repositories.poi import POI, POIRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.geo import BoundingBox
from repro.hbase import HBaseCluster, RegionScanCache
from repro.sqlstore import SqlEngine

NUM_SEEDS = 200
REBUILD_EVERY = 25
OPS_PER_SEED = 12

#: Fixed POI universe: id -> (name, lat, lon, keywords).
POIS = {
    1: ("Acropolis", 37.9715, 23.7257, ("museum", "history")),
    2: ("Plaka Cafe", 37.9700, 23.7280, ("cafe",)),
    3: ("Tech Park", 37.9900, 23.7800, ("work", "cafe")),
    4: ("North Pier", 38.0200, 23.8000, ("sea",)),
    5: ("Old Market", 37.9600, 23.7100, ("market", "history")),
}

#: Bounding boxes the random queries draw from (None = no spatial filter).
BBOXES = (
    None,
    BoundingBox(37.96, 23.70, 37.98, 23.74),  # downtown three POIs
    BoundingBox(38.00, 23.75, 38.10, 23.90),  # north pier only
)

KEYWORD_CHOICES = ((), ("cafe",), ("history", "sea"), ("nothing-matches",))


def _pois_fingerprint(result):
    """The caller-observable answer rows, bit-exact."""
    return [
        (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
        for p in result.pois
    ]


class _Stack:
    """A small platform slice: cluster + repositories + query module,
    with both caches attached and detachable for oracle runs."""

    def __init__(self, users=24, regions=8, nodes=4):
        self.users = users
        self.cluster = HBaseCluster(
            ClusterConfig(num_nodes=nodes, regions_per_table=regions)
        )
        self.pois = POIRepository(SqlEngine())
        for poi_id, (name, lat, lon, keywords) in POIS.items():
            self.pois.add(
                POI(
                    poi_id=poi_id,
                    name=name,
                    lat=lat,
                    lon=lon,
                    keywords=keywords,
                    category="test",
                )
            )
        self.visits = VisitsRepository(self.cluster, num_regions=regions)
        self.scan_cache = RegionScanCache(max_entries=4096)
        self.cluster.attach_scan_cache(self.scan_cache)
        self.hot_poi_cache = HotPOICache(max_entries=64)
        self.qa = QueryAnsweringModule(
            self.pois, self.visits, hot_poi_cache=self.hot_poi_cache
        )
        self._ts = 0

    def write(self, rng):
        self._ts += 1
        poi_id = rng.choice(list(POIS))
        name, lat, lon, keywords = POIS[poi_id]
        self.visits.store(
            VisitStruct(
                user_id=rng.randrange(1, self.users + 1),
                poi_id=poi_id,
                timestamp=self._ts,
                # Arbitrary float grades on purpose: sums are inexact,
                # so any fold-order difference between the cached and
                # uncached paths would surface as a bit mismatch.
                grade=rng.uniform(0.0, 5.0),
                poi_name=name,
                lat=lat,
                lon=lon,
                keywords=keywords,
            )
        )

    def random_query(self, rng):
        k = rng.randrange(1, self.users + 1)
        friends = tuple(rng.sample(range(1, self.users + 1), k))
        since, until = None, None
        if rng.random() < 0.4:
            since = rng.randrange(0, max(1, self._ts))
            until = since + rng.randrange(1, self._ts + 2)
        return SearchQuery(
            bbox=rng.choice(BBOXES),
            keywords=rng.choice(KEYWORD_CHOICES),
            friend_ids=friends,
            since=since,
            until=until,
            sort_by=rng.choice(("interest", "hotness")),
            limit=rng.choice((3, 10)),
        )

    def oracle(self, query):
        """Run ``query`` with every cache detached, restore after."""
        self.cluster.scan_cache = None
        saved_hot = self.qa.hot_poi_cache
        self.qa.hot_poi_cache = None
        try:
            return self.qa.search(query)
        finally:
            self.cluster.scan_cache = self.scan_cache
            self.qa.hot_poi_cache = saved_hot

    def shutdown(self):
        self.cluster.shutdown()


class TestRandomizedInterleavings:
    """200 seeded interleavings of writes / flushes / compactions /
    HotIn refreshes / queries; every query is checked against the
    cache-off oracle."""

    def test_cached_answers_match_oracle_across_interleavings(self):
        stack = _Stack()
        total_queries = 0
        try:
            for seed in range(NUM_SEEDS):
                if seed and seed % REBUILD_EVERY == 0:
                    stack.shutdown()
                    stack = _Stack()
                rng = random.Random(seed)
                # Every interleaving starts with some data in place.
                for _ in range(rng.randrange(3, 9)):
                    stack.write(rng)
                for _ in range(OPS_PER_SEED):
                    op = rng.random()
                    if op < 0.35:
                        stack.write(rng)
                    elif op < 0.45:
                        stack.visits.table.flush()
                    elif op < 0.52:
                        stack.visits.table.compact()
                    elif op < 0.62:
                        # HotIn-style refresh: rewrite a POI's scores and
                        # bump the epoch, as MoDisSENSE.run_hotin does.
                        stack.pois.update_hotin(
                            rng.choice(list(POIS)),
                            hotness=rng.uniform(0, 10),
                            interest=rng.uniform(0, 5),
                        )
                        stack.hot_poi_cache.bump_epoch()
                    elif op < 0.72:
                        query = SearchQuery(
                            bbox=rng.choice(BBOXES),
                            keywords=rng.choice(KEYWORD_CHOICES),
                            sort_by=rng.choice(("interest", "hotness")),
                            limit=rng.choice((3, 10)),
                        )
                        cached = stack.qa.search(query)
                        oracle = stack.oracle(query)
                        assert _pois_fingerprint(cached) == _pois_fingerprint(
                            oracle
                        ), "non-personalized mismatch at seed %d" % seed
                        total_queries += 1
                    else:
                        query = stack.random_query(rng)
                        cached = stack.qa.search(query)
                        oracle = stack.oracle(query)
                        assert _pois_fingerprint(cached) == _pois_fingerprint(
                            oracle
                        ), "personalized mismatch at seed %d" % seed
                        total_queries += 1
            # The suite is vacuous if the cache never actually served
            # anything; demand real hits on the final stack.
            assert stack.scan_cache.stats()["hits"] > 0
            assert total_queries > NUM_SEEDS  # several queries per seed
        finally:
            stack.shutdown()

    def test_repeat_query_hits_and_matches_after_quiescence(self):
        stack = _Stack()
        try:
            rng = random.Random(4242)
            for _ in range(30):
                stack.write(rng)
            query = SearchQuery(
                friend_ids=tuple(range(1, stack.users + 1)),
                sort_by="interest",
            )
            first = stack.qa.search(query)
            assert first.cache_misses > 0 and first.cache_hits == 0
            second = stack.qa.search(query)
            assert second.cache_hits > 0 and second.cache_misses == 0
            assert second.records_scanned == 0  # fully served from cache
            assert _pois_fingerprint(first) == _pois_fingerprint(second)
            assert _pois_fingerprint(second) == _pois_fingerprint(
                stack.oracle(query)
            )
        finally:
            stack.shutdown()


class TestSeqidInvalidation:
    """Every region mutation kind must reject previously cached entries."""

    def _stack(self):
        stack = _Stack()
        rng = random.Random(7)
        for _ in range(40):
            stack.write(rng)
        return stack

    def _warm(self, stack, query):
        stack.qa.search(query)  # populate
        warm = stack.qa.search(query)
        assert warm.cache_hits > 0
        return warm

    def test_write_invalidates_owning_region_entries(self):
        stack = self._stack()
        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, stack.users + 1)), sort_by="hotness"
            )
            self._warm(stack, query)
            rng = random.Random(8)
            stack.write(rng)
            after = stack.qa.search(query)
            # The write's region misses; untouched regions still hit.
            assert after.cache_misses > 0
            assert after.cache_hits > 0
            assert _pois_fingerprint(after) == _pois_fingerprint(
                stack.oracle(query)
            )
        finally:
            stack.shutdown()

    @pytest.mark.parametrize("mutation", ["flush", "compact"])
    def test_flush_and_compaction_invalidate(self, mutation):
        stack = self._stack()
        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, stack.users + 1)), sort_by="interest"
            )
            self._warm(stack, query)
            if mutation == "flush":
                stack.visits.table.flush()
            else:
                stack.visits.table.flush()
                stack.visits.table.compact()
            after = stack.qa.search(query)
            # A full-table maintenance pass touches every region, so the
            # whole warm set must be rejected and rescanned.
            assert after.cache_hits == 0
            assert after.cache_misses > 0
            assert _pois_fingerprint(after) == _pois_fingerprint(
                stack.oracle(query)
            )
        finally:
            stack.shutdown()

    def test_store_race_stamp_is_stale_on_arrival(self):
        """An entry stored with a pre-write seqid is never served."""
        cache = RegionScanCache()
        cache.store(5, 11, (None, None), seqid=3, partial=((1, 2.0, 4),),
                    attrs={1: ("A", 0.0, 0.0, ())})
        # Region mutated while the scan ran: current seqid moved to 4.
        assert cache.lookup(5, 11, (None, None), current_seqid=4) is None
        assert cache.stats()["invalidations"] == 1
        # ...and the eager drop means even the old seqid cannot revive it.
        assert cache.lookup(5, 11, (None, None), current_seqid=3) is None


class TestCacheMechanics:
    def test_ttl_expiry_with_injected_clock(self):
        now = [100.0]
        cache = RegionScanCache(ttl_s=10.0, clock=lambda: now[0])
        cache.store(1, 1, (None, None), seqid=0, partial=(), attrs={})
        assert cache.lookup(1, 1, (None, None), 0) is not None
        now[0] += 10.0
        assert cache.lookup(1, 1, (None, None), 0) is None

    def test_lru_eviction_and_region_index(self):
        cache = RegionScanCache(max_entries=2)
        cache.store(1, 1, (None, None), 0, (), {})
        cache.store(1, 2, (None, None), 0, (), {})
        cache.store(2, 3, (None, None), 0, (), {})  # evicts (1, 1)
        assert len(cache) == 2
        assert cache.lookup(1, 1, (None, None), 0) is None
        assert cache.lookup(1, 2, (None, None), 0) is not None
        assert cache.stats()["evictions"] == 1
        # The evicted key must also have left the region index:
        # invalidating region 1 drops exactly the one live entry.
        assert cache.invalidate_regions([1]) == 1

    def test_sweep_reaps_stale_and_expired(self):
        now = [0.0]
        cache = RegionScanCache(ttl_s=5.0, clock=lambda: now[0])
        cache.store(1, 1, (None, None), seqid=7, partial=(), attrs={})
        cache.store(2, 2, (None, None), seqid=3, partial=(), attrs={})
        now[0] = 6.0
        cache.store(3, 3, (None, None), seqid=1, partial=(), attrs={})
        # Entry 1+2 TTL-expired; entry 3 fresh but region 3 moved on.
        assert cache.sweep(current_seqids={1: 7, 2: 3, 3: 2}) == 3
        assert len(cache) == 0

    def test_node_failure_invalidates_moved_regions(self):
        stack = _Stack()
        try:
            rng = random.Random(9)
            for _ in range(40):
                stack.write(rng)
            query = SearchQuery(
                friend_ids=tuple(range(1, stack.users + 1)), sort_by="hotness"
            )
            stack.qa.search(query)
            populated = len(stack.scan_cache)
            assert populated > 0
            before = stack.scan_cache.stats()["invalidations"]
            stack.cluster.fail_node(0)
            assert stack.scan_cache.stats()["invalidations"] > before
            after = stack.qa.search(query)
            assert _pois_fingerprint(after) == _pois_fingerprint(
                stack.oracle(query)
            )
        finally:
            stack.shutdown()

    def test_node_recovery_invalidates_moved_regions(self):
        # Symmetric with failure: recovery moves regions *back* to the
        # revived node, so partials cached while the survivors hosted
        # them must be dropped too.
        stack = _Stack()
        try:
            rng = random.Random(9)
            for _ in range(40):
                stack.write(rng)
            query = SearchQuery(
                friend_ids=tuple(range(1, stack.users + 1)), sort_by="hotness"
            )
            stack.cluster.fail_node(0)
            stack.qa.search(query)  # cache partials on the survivors
            assert len(stack.scan_cache) > 0
            before = stack.scan_cache.stats()["invalidations"]
            stack.cluster.recover_node(0)
            assert stack.scan_cache.stats()["invalidations"] > before
            after = stack.qa.search(query)
            assert _pois_fingerprint(after) == _pois_fingerprint(
                stack.oracle(query)
            )
        finally:
            stack.shutdown()


class TestHotPOICache:
    def test_epoch_bump_invalidates(self):
        cache = HotPOICache()
        cache.store("k", version=1, rows=(1, 2))
        assert cache.get("k", 1) == (1, 2)
        cache.bump_epoch()
        assert cache.get("k", 1) is None

    def test_version_mismatch_invalidates(self):
        cache = HotPOICache()
        cache.store("k", version=1, rows=(1,))
        assert cache.get("k", 2) is None
        assert cache.stats()["invalidations"] == 1

    def test_poi_writes_bump_repository_version(self):
        pois = POIRepository(SqlEngine())
        v0 = pois.version
        pois.add(POI(poi_id=1, name="A", lat=0, lon=0,
                     keywords=(), category="c"))
        assert pois.version == v0 + 1
        assert pois.update_hotin(1, hotness=2.0, interest=1.0)
        assert pois.version == v0 + 2
        # Unknown POI: no write happened, version must not move.
        assert not pois.update_hotin(999, hotness=0.0, interest=0.0)
        assert pois.version == v0 + 2

    def test_lru_bound(self):
        cache = HotPOICache(max_entries=2)
        cache.store("a", 0, 1)
        cache.store("b", 0, 2)
        cache.store("c", 0, 3)
        assert cache.get("a", 0) is None
        assert cache.stats()["evictions"] == 1


class TestSingleFlightUnit:
    def test_sequential_calls_never_coalesce(self):
        sf = SingleFlight()
        r1, c1 = sf.do("k", lambda: 1)
        r2, c2 = sf.do("k", lambda: 2)
        assert (r1, c1) == (1, False)
        assert (r2, c2) == (2, False)
        assert sf.coalesced_total == 0
        assert sf.in_flight() == 0
