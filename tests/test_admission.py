"""Overload-safe serving tests: admission control primitives, the
brownout ladder, end-to-end deadline cancellation, retry budgets under
a seeded chaos storm, and the REST 429 surface.

Everything is deterministic: token buckets and budgets run on injected
fake clocks, deadline enforcement is measured in simulated cost, and
the retry-storm comparison resets the module-global region-id counter
so the seeded fault injector makes *identical* per-region decisions
across the compared cluster builds.
"""

import dataclasses
import itertools
import statistics
import warnings

import pytest

import repro.hbase.region as region_mod
from repro import MoDisSENSE, RestApi
from repro.cluster import MergeWork, WebServerFarm
from repro.config import (
    AdmissionConfig,
    ClusterConfig,
    FaultsConfig,
    PlatformConfig,
    SupervisorConfig,
    TelemetryConfig,
)
from repro.core.admission import (
    LEVEL_NORMAL,
    LEVEL_PAUSE,
    LEVEL_REJECT_ADMIN,
    LEVEL_REJECT_BACKGROUND,
    LEVEL_SHRINK,
    LEVEL_STALE,
    AdmissionController,
    GradientLimiter,
    RetryBudget,
    TokenBucket,
)
from repro.core.faults import FaultInjector
from repro.core.modules.query_answering import QueryAnsweringModule, SearchQuery
from repro.core.monitoring import PlatformMetrics
from repro.core.repositories.poi import POI, POIRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.core.scheduler import PeriodicScheduler, build_platform_scheduler
from repro.errors import (
    OverloadedError,
    QueryCancelled,
    QueryDeadlineExceeded,
    ValidationError,
)
from repro.hbase import CancellationToken, HBaseCluster
from repro.sqlstore import SqlEngine


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# --------------------------------------------------------------------------
# TokenBucket


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()
        assert bucket.retry_after_s() == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)  # a long idle stretch earns only `burst`
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValidationError):
            TokenBucket(rate=1.0, burst=0.0)


# --------------------------------------------------------------------------
# RetryBudget


class TestRetryBudget:
    def test_ratio_bounds_spends(self):
        clock = FakeClock()
        budget = RetryBudget(ratio=0.1, window_s=10.0, min_tokens=2,
                             clock=clock)
        budget.record_request(100)
        grants = sum(budget.try_spend() for _ in range(15))
        assert grants == 10  # 0.1 x 100
        stats = budget.stats()
        assert stats["window_spends"] == 10
        assert stats["denied_total"] == 5
        assert stats["window_spends"] <= stats["allowed"]

    def test_min_tokens_floor_with_no_traffic(self):
        budget = RetryBudget(ratio=0.1, window_s=10.0, min_tokens=2,
                             clock=FakeClock())
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_window_expiry_forgets_old_spends(self):
        clock = FakeClock()
        budget = RetryBudget(ratio=0.1, window_s=10.0, min_tokens=2,
                             clock=clock)
        budget.record_request(100)
        for _ in range(10):
            assert budget.try_spend()
        assert not budget.try_spend()
        clock.advance(11.0)  # everything scrolls out of the window
        assert budget.stats()["window_requests"] == 0
        # Back to the floor: two grants, then denial again.
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            RetryBudget(ratio=0.0)
        with pytest.raises(ValidationError):
            RetryBudget(ratio=1.5)
        with pytest.raises(ValidationError):
            RetryBudget(window_s=0.0)


# --------------------------------------------------------------------------
# GradientLimiter


class TestGradientLimiter:
    def _limiter(self, **kw):
        defaults = dict(
            name="t", initial_limit=10, min_limit=2, max_limit=12,
            latency_tolerance=2.0, decrease_factor=0.7, increase_step=1.0,
            sample_window=4, baseline_latency_ms=10.0,
        )
        defaults.update(kw)
        return GradientLimiter(**defaults)

    def test_congestion_shrinks_multiplicatively(self):
        lim = self._limiter()
        for _ in range(4):
            lim.observe(100.0)  # 10x baseline: congested window
        assert lim.limit == 7  # int(10 * 0.7)
        assert lim.describe()["decreases"] == 1

    def test_calm_grows_additively_and_caps(self):
        lim = self._limiter(initial_limit=11)
        for _ in range(8):  # two calm windows
            lim.observe(5.0)
        assert lim.limit == 12  # capped at max_limit
        assert lim.describe()["increases"] == 2

    def test_floor_at_min_limit(self):
        lim = self._limiter()
        for _ in range(4 * 20):  # many congested windows
            lim.observe(100.0)
        assert lim.limit == 2

    def test_inflight_gates_admission(self):
        lim = self._limiter(initial_limit=2)
        assert lim.try_acquire()
        assert lim.try_acquire()
        assert not lim.try_acquire()
        lim.release()
        assert lim.try_acquire()

    def test_learned_baseline_tracks_smallest_median(self):
        lim = self._limiter(baseline_latency_ms=None)
        for _ in range(4):
            lim.observe(10.0)
        assert lim.baseline_ms == pytest.approx(10.0)
        for _ in range(4):
            lim.observe(8.0)
        assert lim.baseline_ms == pytest.approx(8.0)
        # A slower window drifts the floor up by at most 2%.
        for _ in range(4):
            lim.observe(50.0)
        assert lim.baseline_ms == pytest.approx(8.0 * 1.02)


# --------------------------------------------------------------------------
# AdmissionController


class FakeScheduler:
    def __init__(self):
        self.pauses = 0
        self.resumes = 0

    def pause_pausable(self):
        self.pauses += 1
        return ["storage_scrub"]

    def resume_pausable(self):
        self.resumes += 1
        return ["storage_scrub"]


class FakeIngest:
    def __init__(self):
        self.shed_states = []

    def set_shed_override(self, active):
        self.shed_states.append(active)


class FakeEventLog:
    def __init__(self):
        self.events = []

    def emit(self, event, **kw):
        self.events.append(event)


def _controller(**overrides):
    cfg = AdmissionConfig(
        enabled=True, initial_limit=4, min_limit=1,
        baseline_latency_ms=10.0, escalate_ticks=2, recover_ticks=2,
        **overrides,
    )
    metrics = PlatformMetrics()
    log = FakeEventLog()
    return AdmissionController(cfg, metrics=metrics, event_log=log), metrics, log


class TestAdmissionController:
    def test_priority_ordered_rejection(self):
        ctrl, _m, _log = _controller()
        ctrl.force_level(LEVEL_REJECT_BACKGROUND)
        with pytest.raises(OverloadedError):
            ctrl.admit("background")
        ctrl.admit("admin").finish()
        ctrl.admit("interactive").finish()
        ctrl.force_level(LEVEL_REJECT_ADMIN)
        with pytest.raises(OverloadedError):
            ctrl.admit("admin")
        # Interactive is the last class standing at the top rung.
        ctrl.admit("interactive").finish()
        ctrl.reset()
        assert ctrl.level == LEVEL_NORMAL

    def test_unknown_priority_rejected(self):
        ctrl, _m, _log = _controller()
        with pytest.raises(ValidationError):
            ctrl.admit("vip")

    def test_concurrency_rejection_carries_retry_hint(self):
        ctrl, metrics, _log = _controller()
        tickets = [ctrl.admit("interactive") for _ in range(4)]
        with pytest.raises(OverloadedError) as exc:
            ctrl.admit("interactive")
        assert exc.value.retry_after_s > 0
        assert metrics.counter(
            "admission.rejected",
            labels={"class": "interactive", "reason": "concurrency"},
        ) == 1
        for t in tickets:
            t.finish()
        ctrl.admit("interactive").finish()

    def test_client_rate_limit_isolated_per_client(self):
        ctrl, _m, _log = _controller(client_rate=1.0, client_burst=2.0)
        ctrl.admit("interactive", client_id="noisy").finish()
        ctrl.admit("interactive", client_id="noisy").finish()
        with pytest.raises(OverloadedError) as exc:
            ctrl.admit("interactive", client_id="noisy")
        assert "noisy" in str(exc.value)
        # A different caller is untouched by the noisy one's bucket.
        ctrl.admit("interactive", client_id="quiet").finish()

    def test_escalate_and_recover_hysteresis(self):
        ctrl, _m, log = _controller()

        def hot_tick():
            tickets = [ctrl.admit("interactive") for _ in range(4)]
            for _ in range(2):
                with pytest.raises(OverloadedError):
                    ctrl.admit("interactive")
            for t in tickets:
                t.finish()
            ctrl.tick()

        assert ctrl.tick() == LEVEL_NORMAL  # calm stays at 0
        hot_tick()
        assert ctrl.level == LEVEL_NORMAL  # hysteresis: one hot tick
        hot_tick()
        assert ctrl.level == LEVEL_STALE
        assert ctrl.stale_ok()
        assert ctrl.query_shape() is None  # shaping starts one rung up
        hot_tick()
        hot_tick()
        assert ctrl.level == LEVEL_SHRINK
        shape = ctrl.query_shape()
        assert shape == {
            "per_region_limit": ctrl.config.brownout_per_region_limit,
            "max_k": ctrl.config.brownout_max_k,
        }
        # Calm ticks walk back down one rung per `recover_ticks` run.
        ctrl.tick()
        ctrl.tick()
        assert ctrl.level == LEVEL_STALE
        ctrl.tick()
        ctrl.tick()
        assert ctrl.level == LEVEL_NORMAL
        assert [e["reason"] for e in log.events] == [
            "escalate", "escalate", "recover", "recover",
        ]

    def test_level_three_levers_are_edge_triggered(self):
        ctrl, _m, _log = _controller()
        sched, ingest = FakeScheduler(), FakeIngest()
        ctrl.attach_scheduler(sched)
        ctrl.attach_ingest(ingest)
        ctrl.force_level(LEVEL_PAUSE)
        assert sched.pauses == 1 and ingest.shed_states == [True]
        ctrl.force_level(LEVEL_REJECT_BACKGROUND)  # still >= 3: no re-fire
        assert sched.pauses == 1 and len(ingest.shed_states) == 1
        ctrl.force_level(LEVEL_SHRINK)  # crossing back down releases
        assert sched.resumes == 1 and ingest.shed_states == [True, False]
        ctrl.reset()
        assert sched.resumes == 1  # already below the rung: no re-fire

    def test_describe_shape(self):
        ctrl, _m, _log = _controller()
        info = ctrl.describe()
        assert info["enabled"] is True
        assert info["level_name"] == "normal"
        assert set(info["limiters"]) == {
            "interactive", "admin", "background",
        }
        assert info["retry_budget"]["ratio"] == 0.1
        # Weighted initial limits: interactive > admin > background.
        limits = {c: d["limit"] for c, d in info["limiters"].items()}
        assert limits["interactive"] > limits["admin"] > limits["background"]


# --------------------------------------------------------------------------
# REST surface


def _platform_config(admission=None, telemetry=False):
    cfg = dataclasses.replace(
        PlatformConfig.small(),
        telemetry=TelemetryConfig(enabled=telemetry),
    )
    if admission is not None:
        cfg = dataclasses.replace(cfg, admission=admission)
    return cfg


def _seed(platform, users=10):
    for uid in range(1, users):
        platform.visits_repository.store(VisitStruct(
            user_id=uid, poi_id=1, timestamp=uid, grade=0.5, poi_name="A",
            lat=37.98, lon=23.73, keywords=("x",),
        ))


class TestRestAdmission:
    def test_disabled_platform_has_no_controller(self):
        p = MoDisSENSE(_platform_config())
        try:
            assert p.admission is None
            rest = RestApi(p)
            out = rest.handle("admin_admission", {})
            assert out["status"] == "ok"
            assert out["data"] == {"enabled": False}
        finally:
            p.shutdown()

    def test_brownout_rejection_envelope(self):
        p = MoDisSENSE(_platform_config(AdmissionConfig(enabled=True)))
        _seed(p)
        rest = RestApi(p)
        try:
            forced = rest.handle(
                "admin_admission",
                {"force_level": LEVEL_REJECT_BACKGROUND},
            )
            assert forced["data"]["level_name"] == "reject_background"
            assert forced["data"]["forced"] is True
            # Background traffic is shed with a machine-readable 429.
            out = rest.handle("push_gps", {"points": []})
            assert out["status"] == "error"
            assert out["error"]["code"] == "overloaded"
            assert out["error"]["retry_after_s"] > 0
            # Interactive traffic still flows at this rung.
            ok = rest.handle(
                "search", {"friend_ids": [1, 2, 3], "sort_by": "hotness"}
            )
            assert ok["status"] == "ok"
            reset = rest.handle("admin_admission", {"reset": True})
            assert reset["data"]["level"] == 0
            again = rest.handle("push_gps", {"points": []})
            assert again["status"] == "ok"
        finally:
            p.shutdown()

    def test_per_client_rate_limit_at_the_boundary(self):
        p = MoDisSENSE(_platform_config(AdmissionConfig(
            enabled=True, client_rate=0.001, client_burst=2.0,
        )))
        _seed(p)
        rest = RestApi(p)
        try:
            req = {"friend_ids": [1, 2], "sort_by": "hotness",
                   "client_id": "noisy"}
            assert rest.handle("search", dict(req))["status"] == "ok"
            assert rest.handle("search", dict(req))["status"] == "ok"
            third = rest.handle("search", dict(req))
            assert third["status"] == "error"
            assert third["error"]["code"] == "overloaded"
            assert third["error"]["retry_after_s"] > 0
            other = dict(req, client_id="quiet")
            assert rest.handle("search", other)["status"] == "ok"
        finally:
            p.shutdown()

    def test_untriggered_admission_is_byte_identical(self):
        """Admission on but idle must not perturb a single byte of any
        response — the feature is free until it fires."""
        off = MoDisSENSE(_platform_config())
        on = MoDisSENSE(_platform_config(AdmissionConfig(enabled=True)))
        _seed(off)
        _seed(on)
        rest_off, rest_on = RestApi(off), RestApi(on)
        try:
            requests = [
                ("search", {"friend_ids": [1, 2, 3], "sort_by": "hotness"}),
                ("search", {"keywords": ["x"], "sort_by": "hotness"}),
                ("trending", {"now": 100, "window_s": 1000}),
                ("friends", {"user_id": 1}),
            ]
            for endpoint, req in requests * 3:
                assert rest_off.handle(endpoint, dict(req)) == \
                       rest_on.handle(endpoint, dict(req))
        finally:
            off.shutdown()
            on.shutdown()

    def test_state_changes_emit_wide_events(self):
        p = MoDisSENSE(_platform_config(
            AdmissionConfig(enabled=True), telemetry=True,
        ))
        rest = RestApi(p)
        try:
            rest.handle("admin_admission", {"force_level": 3})
            out = rest.handle("admin_events", {"type": "admission.state"})
            events = out["data"]["events"]
            assert events
            assert events[-1]["level"] == 3
            assert events[-1]["level_name"] == "pause"
            assert events[-1]["reason"] == "forced"
        finally:
            p.shutdown()


# --------------------------------------------------------------------------
# Deadline propagation and cooperative cancellation


class TestCancellationToken:
    def test_cancel_first_wins(self):
        token = CancellationToken()
        assert token.cancel("abandoned")
        assert not token.cancel("later")
        assert token.reason == "abandoned"

    def test_checkpoint_raises_after_cancel(self):
        token = CancellationToken()
        token.checkpoint(records=10)  # clean: no deadline, not tripped
        token.cancel("abandoned")
        with pytest.raises(QueryCancelled):
            token.checkpoint(records=10)

    def test_deadline_budget_is_simulated_cost(self):
        token = CancellationToken(
            deadline_ms=2.0, cost_per_record_ms=0.01, setup_ms=0.5,
        )
        token.checkpoint(records=100)  # 0.5 + 1.0 = 1.5ms: inside
        assert token.remaining_ms(1.5) == pytest.approx(0.5)
        with pytest.raises(QueryCancelled):
            token.checkpoint(records=200)  # 0.5 + 2.0 = 2.5ms: blown
        assert not token.cancelled  # non-strict: region-local trip

    def test_strict_trips_shared_token(self):
        token = CancellationToken(
            deadline_ms=1.0, cost_per_record_ms=0.01, strict=True,
        )
        with pytest.raises(QueryCancelled):
            token.checkpoint(records=200)
        assert token.cancelled  # siblings abort at their next probe

    def test_no_deadline_remaining_is_infinite(self):
        assert CancellationToken().remaining_ms(1e9) == float("inf")


def _deadline_stack(visits_per_user=50, regions=8):
    cluster = HBaseCluster(
        ClusterConfig(num_nodes=4, regions_per_table=regions)
    )
    pois = POIRepository(SqlEngine())
    pois.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                 keywords=("x",), category="cafe"))
    visits = VisitsRepository(cluster, num_regions=regions)
    for uid in range(1, 40):
        for k in range(visits_per_user):
            visits.store(VisitStruct(
                user_id=uid, poi_id=1, timestamp=uid * 1000 + k,
                grade=0.5, poi_name="A", lat=37.98, lon=23.73,
                keywords=("x",),
            ))
    qa = QueryAnsweringModule(pois, visits)
    return cluster, qa


class TestDeadlineCancellation:
    def test_mid_scan_abort_stops_burning_cells(self):
        """A 2ms deadline over ~1950 scannable records must abort each
        region within one checkpoint interval — the whole point of
        cooperative cancellation is that the work *stops*, not that the
        result is merely flagged late."""
        cluster, qa = _deadline_stack()
        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, 40)), sort_by="hotness",
            )
            clean = qa.search(query)
            assert not clean.degraded
            assert clean.records_scanned == 1950

            tight = SearchQuery(
                friend_ids=tuple(range(1, 40)), sort_by="hotness",
                deadline_ms=2.0,
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                cut = qa.search(tight)
            assert cut.degraded
            assert cut.coverage < 1.0
            # Every region stopped at (or before) its first checkpoint:
            # 8 regions x 64-cell probe interval, nowhere near 1950.
            assert cut.records_scanned <= 8 * 64
            assert cut.records_scanned < clean.records_scanned / 3
        finally:
            cluster.shutdown()

    def test_strict_deadline_aborts_whole_query(self):
        cluster, qa = _deadline_stack()
        try:
            cluster.faults_config = FaultsConfig(
                enabled=True, strict_deadline=True,
            )
            tight = SearchQuery(
                friend_ids=tuple(range(1, 40)), sort_by="hotness",
                deadline_ms=2.0,
            )
            with pytest.raises(QueryDeadlineExceeded) as exc:
                qa.search(tight)
            assert "aborted mid-scan" in str(exc.value)
        finally:
            cluster.shutdown()

    def test_no_deadline_path_is_unchanged(self):
        cluster, qa = _deadline_stack(visits_per_user=5)
        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, 40)), sort_by="hotness",
            )
            first = qa.search(query)
            second = qa.search(query)
            assert not first.degraded
            assert first.records_scanned == second.records_scanned
            assert [p.poi_id for p in first.pois] == \
                   [p.poi_id for p in second.pois]
        finally:
            cluster.shutdown()


# --------------------------------------------------------------------------
# Retry budget under a seeded chaos storm


def _storm(max_retries, budget=None, queries=16):
    """Run `queries` personalized searches against a 30%-error-rate
    cluster; returns (per-query coverages, metrics).

    Region ids come from a module-global counter, and the seeded
    injector keys its decisions on them — reset the counter so every
    compared build sees identical ids and thus *identical* first-attempt
    fault decisions.
    """
    region_mod._region_ids = itertools.count()
    fcfg = FaultsConfig(
        enabled=True, seed=42, region_error_rate=0.3,
        max_retries=max_retries, hedge_enabled=False,
        breaker_threshold=1000,
    )
    cluster = HBaseCluster(
        ClusterConfig(num_nodes=4, regions_per_table=8),
        faults_config=fcfg,
    )
    pois = POIRepository(SqlEngine())
    pois.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                 keywords=("x",), category="cafe"))
    visits = VisitsRepository(cluster, num_regions=8)
    for uid in range(1, 41):
        visits.store(VisitStruct(
            user_id=uid, poi_id=1, timestamp=uid, grade=0.5, poi_name="A",
            lat=37.98, lon=23.73, keywords=("x",),
        ))
    qa = QueryAnsweringModule(pois, visits)
    cluster.attach_fault_injector(FaultInjector(fcfg))
    metrics = PlatformMetrics()
    cluster.attach_metrics(metrics)
    if budget is not None:
        cluster.attach_retry_budget(budget)
    query = SearchQuery(friend_ids=tuple(range(1, 41)), sort_by="hotness")
    coverages = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for _ in range(queries):
            coverages.append(qa.search(query).coverage)
    cluster.shutdown()
    return coverages, metrics


class TestRetryStorm:
    def test_budget_caps_the_storm_without_losing_goodput(self):
        """Seeded chaos at 4x load (16 back-to-back fan-outs, 30% region
        error rate): the budget must (a) hold spends within its ratio
        bound, (b) cut retry volume far below the unbudgeted storm, and
        (c) still beat the no-retry baseline's coverage — capped
        recovery is strictly better than none, per query."""
        no_retry, _ = _storm(max_retries=0)
        unbudgeted, m_storm = _storm(max_retries=2)
        budget = RetryBudget(ratio=0.1, window_s=60.0, min_tokens=2)
        budgeted, m_budget = _storm(max_retries=2, budget=budget)

        # (a) within budget: spends never exceed the sliding-window bound.
        stats = budget.stats()
        assert stats["window_spends"] <= stats["allowed"]
        assert stats["denied_total"] > 0  # the cap actually bit
        assert m_budget.counter("fanout.retries_denied") == \
               stats["denied_total"]

        # (b) storm suppression: far fewer retries than the open tap.
        storm_retries = m_storm.counter("fanout.retries")
        budget_retries = m_budget.counter("fanout.retries")
        assert budget_retries < storm_retries / 2
        assert budget_retries == stats["spent_total"]

        # (c) goodput: every budgeted query covers at least as much as
        # its no-retry twin (identical fault decisions), and the mean
        # strictly improves.
        assert all(b >= n for b, n in zip(budgeted, no_retry))
        assert statistics.mean(budgeted) > statistics.mean(no_retry)
        # Sanity: the unbudgeted storm buys the most coverage — the
        # budget trades a little goodput for bounded amplification.
        assert statistics.mean(unbudgeted) >= statistics.mean(budgeted)


# --------------------------------------------------------------------------
# Web farm: least-loaded beats round-robin on skewed work


class TestWebFarmSkew:
    def test_least_loaded_has_lower_spread_on_skewed_work(self):
        """A huge merge every `num_servers`-th item aliases with the
        round-robin cycle, piling all heavy work on one server; the
        least-loaded policy routes around it."""
        def spread(routing):
            farm = WebServerFarm(
                num_servers=4, cores_per_server=2, routing=routing
            )
            sizes = [
                2_000_000 if i % 4 == 0 else 20_000 for i in range(40)
            ]
            farm.schedule_merges([
                MergeWork(query_id=i, items=s, ready_at=0.0)
                for i, s in enumerate(sizes)
            ])
            return farm.utilization_spread()

        rr = spread("round_robin")
        ll = spread("least_loaded")
        assert ll < rr / 2


# --------------------------------------------------------------------------
# Scheduler pause/resume under brownout


class TestSchedulerPause:
    def test_pause_pausable_only_touches_pausable_jobs(self):
        scheduler = PeriodicScheduler()
        fired = []
        scheduler.register("batch", 5.0, fired.append, pausable=True)
        scheduler.register("vital", 5.0, fired.append)
        assert scheduler.pause_pausable() == ["batch"]
        assert scheduler.pause_pausable() == []  # idempotent
        scheduler.advance_to(20.0)
        assert scheduler.job("batch").fire_count == 0
        assert scheduler.job("vital").fire_count == 4
        assert scheduler.resume_pausable() == ["batch"]
        assert scheduler.resume_pausable() == []

    def test_resume_is_level_triggered(self):
        """Windows missed while paused are shed, not replayed: the job
        fires once, one period after resume."""
        scheduler = PeriodicScheduler()
        scheduler.register("batch", 5.0, lambda now: now, pausable=True)
        scheduler.pause("batch")
        scheduler.advance_to(50.0)  # 10 missed windows
        assert scheduler.job("batch").fire_count == 0
        scheduler.resume("batch")
        scheduler.advance_to(56.0)
        job = scheduler.job("batch")
        assert job.fire_count == 1
        assert job.last_result == 55.0  # now + period, not a replay

    def test_resume_unpaused_job_keeps_schedule(self):
        scheduler = PeriodicScheduler()
        scheduler.register("batch", 5.0, lambda now: now)
        scheduler.advance_to(3.0)
        scheduler.resume("batch")  # no-op: not paused
        assert scheduler.job("batch").next_fire_at == 5.0

    def test_platform_storage_scrub_pauses_and_resumes(self):
        """The supervisor's scrub is background work the brownout ladder
        may park: paused it fires no callbacks, resumed it comes back
        level-triggered."""
        cfg = dataclasses.replace(
            _platform_config(), supervisor=SupervisorConfig(enabled=True),
        )
        p = MoDisSENSE(cfg)
        try:
            scheduler = build_platform_scheduler(p)
            period = p.config.supervisor.scrub_period_s
            job = scheduler.job("storage_scrub")
            assert job.pausable
            # The liveness-critical jobs are deliberately not pausable.
            assert not scheduler.job("supervisor_heartbeat").pausable
            scheduler.pause("storage_scrub")
            scheduler.advance_by(5 * period)
            assert job.fire_count == 0
            scheduler.resume("storage_scrub")
            scheduler.advance_by(period)
            assert job.fire_count == 1  # one fire, missed windows shed
        finally:
            p.shutdown()
