"""Property-based tests on repository key encoding and windowed scans.

The visits row key packs salt, user id, descending timestamp and POI id
into raw bytes; any encoding slip (like a separator byte inside a
fixed-width integer) silently corrupts scans.  These properties pin the
whole key path against a brute-force model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig
from repro.core.repositories.text_repo import CommentRecord, TextRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.hbase import HBaseCluster

user_ids = st.integers(min_value=1, max_value=1 << 40)
timestamps = st.integers(min_value=0, max_value=1 << 40)
poi_ids = st.integers(min_value=1, max_value=1 << 20)


def fresh_visits_repo():
    cluster = HBaseCluster(ClusterConfig(num_nodes=2, regions_per_table=4))
    return VisitsRepository(cluster, num_regions=4), cluster


class TestVisitKeyProperties:
    @given(
        st.lists(
            st.tuples(user_ids, timestamps, poi_ids),
            min_size=1,
            max_size=40,
            unique_by=lambda t: (t[0], t[1], t[2]),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_store_scan_roundtrip_exact(self, triples):
        repo, cluster = fresh_visits_repo()
        try:
            for uid, ts, pid in triples:
                repo.store(
                    VisitStruct(user_id=uid, poi_id=pid, timestamp=ts, grade=0.5)
                )
            got = {(v.user_id, v.timestamp, v.poi_id) for v in repo.all_visits()}
            assert got == set(triples)
        finally:
            cluster.shutdown()

    @given(
        user_ids,
        st.lists(st.tuples(timestamps, poi_ids), min_size=1, max_size=30,
                 unique_by=lambda t: t),
        timestamps,
        timestamps,
    )
    @settings(max_examples=40, deadline=None)
    def test_window_scan_equals_filter(self, uid, visits, a, b):
        since, until = sorted((a, b))
        repo, cluster = fresh_visits_repo()
        try:
            for ts, pid in visits:
                repo.store(
                    VisitStruct(user_id=uid, poi_id=pid, timestamp=ts, grade=0.1)
                )
            got = {
                (v.timestamp, v.poi_id)
                for v in repo.visits_of_user(uid, since=since, until=until)
            }
            expected = {
                (ts, pid) for ts, pid in visits if since <= ts < until
            }
            assert got == expected
        finally:
            cluster.shutdown()

    @given(
        user_ids,
        st.lists(st.tuples(timestamps, poi_ids), min_size=1, max_size=30,
                 unique_by=lambda t: t),
    )
    @settings(max_examples=40, deadline=None)
    def test_scan_order_is_newest_first(self, uid, visits):
        repo, cluster = fresh_visits_repo()
        try:
            for ts, pid in visits:
                repo.store(
                    VisitStruct(user_id=uid, poi_id=pid, timestamp=ts, grade=0.1)
                )
            got = [v.timestamp for v in repo.visits_of_user(uid)]
            assert got == sorted(got, reverse=True)
        finally:
            cluster.shutdown()


class TestTextKeyProperties:
    @given(
        st.lists(
            st.tuples(user_ids, poi_ids, timestamps),
            min_size=1,
            max_size=30,
            unique_by=lambda t: t,
        ),
        timestamps,
        timestamps,
    )
    @settings(max_examples=30, deadline=None)
    def test_comment_window_scan_equals_filter(self, triples, a, b):
        since, until = sorted((a, b))
        cluster = HBaseCluster(ClusterConfig(num_nodes=2, regions_per_table=4))
        try:
            repo = TextRepository(cluster, num_regions=4)
            for uid, pid, ts in triples:
                repo.store(CommentRecord(uid, pid, ts, "t", 0.5))
            probe_uid, probe_pid, _ = triples[0]
            got = {
                c.timestamp
                for c in repo.comments(probe_uid, probe_pid, since, until)
            }
            expected = {
                ts
                for uid, pid, ts in triples
                if uid == probe_uid and pid == probe_pid and since <= ts < until
            }
            assert got == expected
        finally:
            cluster.shutdown()
