"""Property-based tests on repository key encoding and windowed scans.

The visits row key packs salt, user id, descending timestamp and POI id
into raw bytes; any encoding slip (like a separator byte inside a
fixed-width integer) silently corrupts scans.  These properties pin the
whole key path against a brute-force model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig
from repro.core.repositories.text_repo import CommentRecord, TextRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.hbase import HBaseCluster

user_ids = st.integers(min_value=1, max_value=1 << 40)
timestamps = st.integers(min_value=0, max_value=1 << 40)
poi_ids = st.integers(min_value=1, max_value=1 << 20)

MAX64 = (1 << 64) - 1
#: Boundary-heavy id/timestamp values: zero, the 8-byte maximum, values
#: whose encodings are all-0x00/all-0xff, and salt edge cases (46368 is
#: the smallest id with salt 0xffff).
boundary_ints = st.one_of(
    st.sampled_from([0, 1, 255, 256, 46368, MAX64 - 1, MAX64]),
    st.integers(min_value=0, max_value=MAX64),
)


def fresh_visits_repo():
    cluster = HBaseCluster(ClusterConfig(num_nodes=2, regions_per_table=4))
    return VisitsRepository(cluster, num_regions=4), cluster


class TestVisitKeyProperties:
    @given(
        st.lists(
            st.tuples(user_ids, timestamps, poi_ids),
            min_size=1,
            max_size=40,
            unique_by=lambda t: (t[0], t[1], t[2]),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_store_scan_roundtrip_exact(self, triples):
        repo, cluster = fresh_visits_repo()
        try:
            for uid, ts, pid in triples:
                repo.store(
                    VisitStruct(user_id=uid, poi_id=pid, timestamp=ts, grade=0.5)
                )
            got = {(v.user_id, v.timestamp, v.poi_id) for v in repo.all_visits()}
            assert got == set(triples)
        finally:
            cluster.shutdown()

    @given(
        user_ids,
        st.lists(st.tuples(timestamps, poi_ids), min_size=1, max_size=30,
                 unique_by=lambda t: t),
        timestamps,
        timestamps,
    )
    @settings(max_examples=40, deadline=None)
    def test_window_scan_equals_filter(self, uid, visits, a, b):
        since, until = sorted((a, b))
        repo, cluster = fresh_visits_repo()
        try:
            for ts, pid in visits:
                repo.store(
                    VisitStruct(user_id=uid, poi_id=pid, timestamp=ts, grade=0.1)
                )
            got = {
                (v.timestamp, v.poi_id)
                for v in repo.visits_of_user(uid, since=since, until=until)
            }
            expected = {
                (ts, pid) for ts, pid in visits if since <= ts < until
            }
            assert got == expected
        finally:
            cluster.shutdown()

    @given(
        user_ids,
        st.lists(st.tuples(timestamps, poi_ids), min_size=1, max_size=30,
                 unique_by=lambda t: t),
    )
    @settings(max_examples=40, deadline=None)
    def test_scan_order_is_newest_first(self, uid, visits):
        repo, cluster = fresh_visits_repo()
        try:
            for ts, pid in visits:
                repo.store(
                    VisitStruct(user_id=uid, poi_id=pid, timestamp=ts, grade=0.1)
                )
            got = [v.timestamp for v in repo.visits_of_user(uid)]
            assert got == sorted(got, reverse=True)
        finally:
            cluster.shutdown()


class TestKeyOffsetProperties:
    """The lazy decode path reads *fixed* row-key byte offsets instead of
    splitting on the separator.  These properties pin those offsets to
    the authoritative :meth:`VisitsRepository.row_key` layout — if either
    side drifts, visits silently decode to the wrong user/time/POI.
    """

    @given(boundary_ints, boundary_ints, boundary_ints)
    @settings(max_examples=200, deadline=None)
    def test_decode_key_roundtrips_row_key(self, uid, ts, pid):
        row = VisitsRepository.row_key(uid, ts, pid)
        assert VisitsRepository.decode_key(row) == (uid, ts, pid)

    @given(boundary_ints, boundary_ints, boundary_ints)
    @settings(max_examples=100, deadline=None)
    def test_decode_cell_equals_key_plus_payload(self, uid, ts, pid):
        from repro.hbase import Cell
        from repro.core.serialization import encode_json

        cell = Cell(
            row=VisitsRepository.row_key(uid, ts, pid),
            family="v",
            qualifier=b"v",
            timestamp=ts,
            value=encode_json({"poi_id": pid, "grade": 0.75}),
        )
        struct = VisitsRepository.decode_cell(cell)
        assert (struct.user_id, struct.timestamp, struct.poi_id) == (uid, ts, pid)
        assert struct.grade == 0.75
        assert VisitsRepository.decode_payload(cell)["grade"] == 0.75
        assert VisitsRepository.decode_grade(cell.value) == 0.75

    @given(boundary_ints, st.floats(min_value=-100.0, max_value=100.0,
                                    allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_decode_grade_matches_full_parse(self, pid, grade):
        from repro.core.serialization import decode_json, encode_json

        for payload in (
            {"poi_id": pid, "grade": grade},  # normalized schema
            {"poi_id": pid, "grade": grade, "name": "x", "lat": 1.5,
             "lon": -2.5, "keywords": ["a"], "hotness": 0.0,
             "interest": 0.0},  # replicated schema
        ):
            value = encode_json(payload)
            assert (
                VisitsRepository.decode_grade(value)
                == decode_json(value)["grade"]
            )

    @given(user_ids, boundary_ints)
    @settings(max_examples=100, deadline=None)
    def test_degenerate_windows_scan_nothing(self, uid, point):
        """``until <= 0`` and ``since == until`` are empty [since, until)
        windows: the key range must be empty and the scan a no-op."""
        start, stop = VisitsRepository.time_range_keys(uid, None, 0)
        assert start == stop
        if point <= MAX64 - 1:  # encode_int_desc(until - 1) must fit
            start, stop = VisitsRepository.time_range_keys(
                uid, point, point
            )
            assert stop is not None and stop <= start

    @given(user_ids, timestamps, poi_ids)
    @settings(max_examples=100, deadline=None)
    def test_open_stop_key_bounds_every_row(self, uid, ts, pid):
        """Satellite regression: the stop key (when not open-ended) must
        sort above every row the user can own — the seed's ``b"\\xff"*12``
        sentinel did not."""
        start, stop = VisitsRepository.time_range_keys(uid, None, None)
        row = VisitsRepository.row_key(uid, ts, pid)
        assert start <= row
        assert stop is None or row < stop


class TestTextKeyProperties:
    @given(
        st.lists(
            st.tuples(user_ids, poi_ids, timestamps),
            min_size=1,
            max_size=30,
            unique_by=lambda t: t,
        ),
        timestamps,
        timestamps,
    )
    @settings(max_examples=30, deadline=None)
    def test_comment_window_scan_equals_filter(self, triples, a, b):
        since, until = sorted((a, b))
        cluster = HBaseCluster(ClusterConfig(num_nodes=2, regions_per_table=4))
        try:
            repo = TextRepository(cluster, num_regions=4)
            for uid, pid, ts in triples:
                repo.store(CommentRecord(uid, pid, ts, "t", 0.5))
            probe_uid, probe_pid, _ = triples[0]
            got = {
                c.timestamp
                for c in repo.comments(probe_uid, probe_pid, since, until)
            }
            expected = {
                ts
                for uid, pid, ts in triples
                if uid == probe_uid and pid == probe_pid and since <= ts < until
            }
            assert got == expected
        finally:
            cluster.shutdown()
