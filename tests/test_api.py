"""Tests for the REST/JSON API layer."""

import pytest

from repro import MoDisSENSE, RestApi
from repro.config import PlatformConfig
from repro.core.api.json_format import ApiResponse, validate_request
from repro.core.repositories.poi import POI
from repro.datagen import ReviewGenerator
from repro.errors import ValidationError
from repro.social import CheckIn, FriendInfo


@pytest.fixture()
def api():
    p = MoDisSENSE(PlatformConfig.small())
    fb = p.plugins["facebook"]
    for i in range(1, 6):
        fb.add_profile(FriendInfo("fb_%d" % i, "User %d" % i, "pic"))
    for i in range(2, 6):
        fb.add_friendship("fb_1", "fb_%d" % i)
    p.poi_repository.add(
        POI(poi_id=1, name="Taverna", lat=37.98, lon=23.73,
            keywords=("food",), category="restaurant", hotness=5.0,
            interest=0.9)
    )
    corpus = ReviewGenerator(seed=1, capacity=2000).labeled_texts(500)
    p.text_processing.train(corpus)
    fb.add_checkin(CheckIn("fb_2", 1, 37.98, 23.73, 100, "wonderful food"))
    rest = RestApi(p)
    yield rest, p
    p.shutdown()


class TestValidation:
    def test_unknown_endpoint(self):
        with pytest.raises(ValidationError):
            validate_request("nope", {})

    def test_missing_required_field(self):
        with pytest.raises(ValidationError):
            validate_request("register", {"network": "facebook"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError):
            validate_request("search", {"bogus": 1})

    def test_wrong_type_rejected(self):
        with pytest.raises(ValidationError):
            validate_request("trending", {"now": "late", "window_s": 10})

    def test_boolean_not_numeric(self):
        with pytest.raises(ValidationError):
            validate_request("trending", {"now": True, "window_s": 10})

    def test_optional_fields_may_be_absent(self):
        validate_request("search", {})

    def test_response_envelopes(self):
        ok = ApiResponse.ok({"x": 1}).as_dict()
        assert ok == {"status": "ok", "data": {"x": 1}}
        err = ApiResponse.fail("boom").as_dict()
        assert err == {"status": "error", "error": "boom"}
        coded = ApiResponse.fail("boom", code="bad_request").as_dict()
        assert coded == {
            "status": "error",
            "error": {"code": "bad_request", "message": "boom"},
        }


class TestEndpoints:
    def test_register_flow(self, api):
        rest, _p = api
        out = rest.handle(
            "register",
            {"network": "facebook", "network_user_id": "fb_1",
             "password": "pw", "now": 0.0},
        )
        assert out["status"] == "ok"
        assert out["data"]["user_id"] == 1
        assert out["data"]["linked_networks"] == ["facebook"]

    def test_register_bad_password_is_error_envelope(self, api):
        rest, _p = api
        out = rest.handle(
            "register",
            {"network": "facebook", "network_user_id": "fb_1",
             "password": "bad", "now": 0.0},
        )
        assert out["status"] == "error"
        assert out["error"]["code"] == "auth_failed"
        assert "credentials" in out["error"]["message"]

    def test_unknown_endpoint_is_error_envelope(self, api):
        rest, _p = api
        out = rest.handle("teleport", {})
        assert out["status"] == "error"
        assert out["error"]["code"] == "unknown_endpoint"

    def test_search_non_personalized(self, api):
        rest, _p = api
        out = rest.handle("search", {"sort_by": "hotness", "limit": 5})
        assert out["status"] == "ok"
        assert out["data"]["personalized"] is False
        assert out["data"]["pois"][0]["name"] == "Taverna"

    def test_search_personalized(self, api):
        rest, p = api
        rest.handle(
            "register",
            {"network": "facebook", "network_user_id": "fb_1",
             "password": "pw", "now": 1000.0},
        )
        p.collect(now=1000)
        out = rest.handle("search", {"friend_ids": [2, 3, 4, 5], "limit": 5})
        assert out["status"] == "ok"
        assert out["data"]["personalized"] is True
        assert out["data"]["pois"][0]["poi_id"] == 1
        assert out["data"]["latency_ms"] > 0

    def test_search_with_bbox(self, api):
        rest, _p = api
        out = rest.handle(
            "search", {"bbox": [37.9, 23.6, 38.1, 23.8], "sort_by": "hotness"}
        )
        assert out["status"] == "ok"
        assert len(out["data"]["pois"]) == 1
        out2 = rest.handle(
            "search", {"bbox": [40.0, 20.0, 41.0, 21.0], "sort_by": "hotness"}
        )
        assert out2["data"]["pois"] == []

    def test_trending(self, api):
        rest, _p = api
        out = rest.handle("trending", {"now": 1000, "window_s": 900})
        assert out["status"] == "ok"
        assert out["data"]["pois"][0]["name"] == "Taverna"

    def test_push_gps(self, api):
        rest, p = api
        out = rest.handle(
            "push_gps",
            {"points": [
                {"user_id": 1, "lat": 37.98, "lon": 23.73, "timestamp": 10},
                {"user_id": 1, "lat": 37.99, "lon": 23.74, "timestamp": 20},
            ]},
        )
        assert out["status"] == "ok"
        assert out["data"]["stored"] == 2
        assert p.gps_repository.count() == 2

    def test_friends_endpoint(self, api):
        rest, p = api
        rest.handle(
            "register",
            {"network": "facebook", "network_user_id": "fb_1",
             "password": "pw", "now": 1000.0},
        )
        p.collect(now=1000)
        out = rest.handle("friends", {"user_id": 1})
        assert out["status"] == "ok"
        assert len(out["data"]["facebook"]) == 4

    def test_blog_workflow_over_api(self, api):
        rest, p = api
        rest.handle(
            "register",
            {"network": "facebook", "network_user_id": "fb_1",
             "password": "pw", "now": 0.0},
        )
        day0 = 1_433_030_400
        points = [
            {"user_id": 1, "lat": 37.98, "lon": 23.73,
             "timestamp": day0 + 28_800 + i * 250}
            for i in range(8)
        ]
        rest.handle("push_gps", {"points": points})
        out = rest.handle(
            "generate_blog",
            {"user_id": 1, "day_start": day0, "day_end": day0 + 86_400},
        )
        assert out["status"] == "ok"
        blog_id = out["data"]["blog_id"]
        assert len(out["data"]["visits"]) == 1

        note = rest.handle(
            "update_blog",
            {"blog_id": blog_id, "visit_index": 0, "note": "great spot"},
        )
        assert note["data"]["visits"][0]["note"] == "great spot"

        published = rest.handle(
            "publish_blog",
            {"blog_id": blog_id, "network": "facebook", "now": 10.0},
        )
        assert published["data"]["published_to"] == ["facebook"]

        listed = rest.handle("get_blogs", {"user_id": 1})
        assert len(listed["data"]["blogs"]) == 1

    def test_endpoint_listing(self, api):
        rest, _p = api
        endpoints = rest.endpoints()
        assert "search" in endpoints
        assert "register" in endpoints
        assert "admin_describe" in endpoints
        assert "explain" in endpoints
        assert "admin_traces" in endpoints
        assert "admin_cache" in endpoints
        assert "admin_ingest" in endpoints
        assert "admin_timeseries" in endpoints
        assert "admin_health" in endpoints
        assert "admin_profile" in endpoints
        assert "admin_events" in endpoints
        assert "admin_supervisor" in endpoints
        assert "admin_admission" in endpoints
        assert len(endpoints) == 22

    def test_explain_endpoint(self, api):
        rest, p = api
        rest.handle(
            "register",
            {"network": "facebook", "network_user_id": "fb_1",
             "password": "pw", "now": 1000.0},
        )
        p.collect(now=1000)
        out = rest.handle("explain", {"friend_ids": [2, 3, 4, 5]})
        assert out["status"] == "ok"
        assert out["data"]["friends"] == 4
        assert out["data"]["records_total"] >= 1
        # Routed fan-out: at most one invoked region per friend; the
        # rest of the 8 regions are pruned client-side.
        assert 1 <= len(out["data"]["regions"]) <= 4
        assert len(out["data"]["regions"]) + out["data"]["regions_pruned"] == 8

    def test_explain_requires_friends(self, api):
        rest, _p = api
        out = rest.handle("explain", {})
        assert out["status"] == "error"

    def test_admin_describe(self, api):
        rest, _p = api
        out = rest.handle("admin_describe", {})
        assert out["status"] == "ok"
        assert out["data"]["pois"] == 1
        assert out["data"]["hbase"]["cluster"]["nodes"] == 4

    def test_admin_metrics_auto_wired(self, api):
        # The REST layer picks up the platform's own registry, so the
        # snapshot shape is there from the first request.
        rest, p = api
        out = rest.handle("admin_metrics", {})
        assert out["status"] == "ok"
        assert set(out["data"]) == {"counters", "gauges", "latencies"}
        # The admin_metrics request itself was counted (labeled series).
        again = rest.handle("admin_metrics", {})
        assert (
            again["data"]["counters"]['api.requests{endpoint=admin_metrics}'] >= 1
        )

    def test_handle_json_roundtrip(self, api):
        import json

        rest, _p = api
        out = json.loads(
            rest.handle_json("search", '{"sort_by": "hotness", "limit": 2}')
        )
        assert out["status"] == "ok"
        assert out["data"]["pois"][0]["name"] == "Taverna"

    def test_handle_json_malformed_body(self, api):
        import json

        rest, _p = api
        out = json.loads(rest.handle_json("search", "{not json"))
        assert out["status"] == "error"
        assert out["error"]["code"] == "bad_request"
        assert "malformed" in out["error"]["message"]

    def test_handle_json_non_object_body(self, api):
        import json

        rest, _p = api
        out = json.loads(rest.handle_json("search", "[1, 2]"))
        assert out["status"] == "error"

    def test_handle_json_empty_body(self, api):
        import json

        rest, _p = api
        out = json.loads(rest.handle_json("search", ""))
        assert out["status"] == "ok"

    def test_admin_metrics_with_sink(self, api):
        from repro.core.monitoring import PlatformMetrics

        rest, _p = api
        metrics = PlatformMetrics()
        metrics.increment("requests", 7)
        rest.attach_metrics(metrics)
        out = rest.handle("admin_metrics", {})
        assert out["data"]["counters"]["requests"] == 7


_PROM_LINE = (
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    # Label values may contain escaped quotes/backslashes/newlines
    # (\" \\ \n) but never a bare quote or backslash.
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (-?[0-9.eE+-]+|NaN|\+Inf|-Inf)$"
)


class TestAdminObservability:
    """The Prometheus-mode metrics endpoint and the traces endpoint."""

    def _run_personalized(self, rest, p):
        from repro.core.repositories.visits import VisitStruct

        p.poi_repository  # platform fixture already has one POI
        p.visits_repository.store(
            VisitStruct(user_id=2, poi_id=1, timestamp=100, grade=0.8,
                        poi_name="Taverna", lat=37.98, lon=23.73,
                        keywords=("food",))
        )
        out = rest.handle("search", {"friend_ids": [2]})
        assert out["status"] == "ok"
        return out

    def test_admin_metrics_prometheus_mode(self, api):
        import re

        rest, p = api
        self._run_personalized(rest, p)
        out = rest.handle("admin_metrics", {"format": "prometheus"})
        assert out["status"] == "ok"
        assert out["data"]["content_type"].startswith("text/plain")
        body = out["data"]["body"]
        assert body.endswith("\n")
        names = set()
        for line in body.splitlines():
            if line.startswith("# TYPE "):
                parts = line.split()
                assert len(parts) == 4 and parts[3] in (
                    "counter", "gauge", "summary"
                ), line
                continue
            assert re.match(_PROM_LINE, line), line
            names.add(line.split("{")[0].split(" ")[0])
        # The personalized-query series made it through sanitization.
        assert "modissense_queries_personalized_total" in names
        assert "modissense_query_personalized_ms" in names
        assert "modissense_query_personalized_ms_count" in names

    def test_admin_metrics_bad_format_rejected(self, api):
        rest, _p = api
        out = rest.handle("admin_metrics", {"format": "xml"})
        assert out["status"] == "error"

    def test_admin_traces_returns_span_tree(self, api):
        rest, p = api
        self._run_personalized(rest, p)
        out = rest.handle("admin_traces", {"limit": 5})
        assert out["status"] == "ok"
        traces = out["data"]["traces"]
        assert traces, "personalized query must produce a trace"
        tree = traces[0]
        assert tree["root"]["name"] == "query.personalized"
        # Acceptance: >= 4 distinct stage names through admin_traces.
        stages = set(tree["stages"])
        assert {"route", "region.scan", "merge", "rank"} <= stages
        assert tree["span_count"] >= 5
        assert out["data"]["tracing"]["enabled"] is True

    def test_admin_traces_slow_log(self, api):
        rest, p = api
        # Force every query into the slow log, then check it appears.
        p.tracer.slow_threshold_ms = 0.0
        self._run_personalized(rest, p)
        out = rest.handle("admin_traces", {"slow": True})
        assert out["status"] == "ok"
        assert out["data"]["traces"]
        assert out["data"]["traces"][0]["root"]["name"] == "query.personalized"
