"""Tests for cells, memstore and store files (the LSM write path)."""

import pytest

from repro.errors import StorageError, ValidationError
from repro.hbase import Cell, MemStore, StoreFile
from repro.hbase.hfile import merge_sorted_runs


def cell(row, ts=1, value=b"v", qualifier=b"q", delete=False):
    return Cell(
        row=row,
        family="f",
        qualifier=qualifier,
        timestamp=ts,
        value=value,
        is_delete=delete,
    )


class TestCell:
    def test_validation(self):
        with pytest.raises(ValidationError):
            cell(b"")  # empty row
        with pytest.raises(ValidationError):
            Cell(row=b"r", family="f", qualifier=b"q", timestamp=-1)
        with pytest.raises(ValidationError):
            Cell(row="str", family="f", qualifier=b"q", timestamp=0)

    def test_sort_newest_version_first(self):
        old = cell(b"r", ts=1)
        new = cell(b"r", ts=2)
        assert new < old  # newest first within the same coordinates

    def test_sort_by_row_then_qualifier(self):
        assert cell(b"a", qualifier=b"z") < cell(b"b", qualifier=b"a")
        assert cell(b"a", qualifier=b"a") < cell(b"a", qualifier=b"b")


class TestMemStore:
    def test_put_and_scan_sorted(self):
        store = MemStore()
        for row in (b"c", b"a", b"b"):
            store.put(cell(row))
        assert [c.row for c in store.scan()] == [b"a", b"b", b"c"]

    def test_scan_range(self):
        store = MemStore()
        for i in range(10):
            store.put(cell(b"row%02d" % i))
        rows = [c.row for c in store.scan(b"row03", b"row07")]
        assert rows == [b"row03", b"row04", b"row05", b"row06"]

    def test_same_version_put_replaces(self):
        store = MemStore()
        store.put(cell(b"r", ts=5, value=b"old"))
        store.put(cell(b"r", ts=5, value=b"new"))
        cells = list(store.scan())
        assert len(cells) == 1
        assert cells[0].value == b"new"

    def test_flush_threshold(self):
        store = MemStore(flush_threshold_bytes=100)
        assert not store.should_flush
        store.put(cell(b"r" * 10, value=b"v" * 200))
        assert store.should_flush

    def test_clear(self):
        store = MemStore()
        store.put(cell(b"r"))
        store.clear()
        assert len(store) == 0
        assert store.size_bytes == 0


class TestStoreFile:
    def test_rejects_unsorted_input(self):
        with pytest.raises(StorageError):
            StoreFile([cell(b"b"), cell(b"a")])

    def test_bloom_filter_and_range_pruning(self):
        sf = StoreFile([cell(b"row%03d" % i) for i in range(100)])
        assert sf.may_contain_row(b"row050")
        assert not sf.may_contain_row(b"zzz")  # beyond last_row
        assert not sf.may_contain_row(b"aaa")  # before first_row

    def test_bloom_no_false_negatives(self):
        rows = [b"key-%d" % i for i in range(0, 1000, 7)]
        sf = StoreFile([cell(r) for r in sorted(rows)])
        for r in rows:
            assert sf.may_contain_row(r)

    def test_scan_range(self):
        sf = StoreFile([cell(b"row%02d" % i) for i in range(20)])
        got = [c.row for c in sf.scan(b"row05", b"row08")]
        assert got == [b"row05", b"row06", b"row07"]

    def test_overlaps_range(self):
        sf = StoreFile([cell(b"m")])
        assert sf.overlaps_range(b"a", b"z")
        assert not sf.overlaps_range(b"n", b"z")
        assert not sf.overlaps_range(b"a", b"m")  # stop is exclusive

    def test_empty_store_file(self):
        sf = StoreFile([])
        assert len(sf) == 0
        assert not sf.may_contain_row(b"x")
        assert list(sf.scan()) == []


class TestMergeSortedRuns:
    def test_merges_in_order(self):
        run1 = [cell(b"a"), cell(b"c")]
        run2 = [cell(b"b"), cell(b"d")]
        merged = merge_sorted_runs([run1, run2])
        assert [c.row for c in merged] == [b"a", b"b", b"c", b"d"]

    def test_later_run_wins_exact_ties(self):
        older = [cell(b"r", ts=5, value=b"old")]
        newer = [cell(b"r", ts=5, value=b"new")]
        merged = merge_sorted_runs([older, newer])
        assert len(merged) == 1
        assert merged[0].value == b"new"

    def test_versions_ordered_newest_first(self):
        run = [cell(b"r", ts=3), cell(b"r", ts=1)]
        run2 = [cell(b"r", ts=2)]
        merged = merge_sorted_runs([run, run2])
        assert [c.timestamp for c in merged] == [3, 2, 1]

    def test_empty_runs(self):
        assert merge_sorted_runs([]) == []
        assert merge_sorted_runs([[], []]) == []
