"""Tests for the bulk social-network population helper."""

import pytest

from repro.config import PlatformConfig
from repro.core import MoDisSENSE
from repro.datagen import (
    ReviewGenerator,
    TasteProfile,
    generate_pois,
    populate_network,
)
from repro.errors import ValidationError
from repro.social import SimulatedNetwork


@pytest.fixture(scope="module")
def pois():
    return generate_pois(count=100, seed=41)


class TestPopulateNetwork:
    def test_creates_circle_and_checkins(self, pois):
        network = SimulatedNetwork("facebook")
        result = populate_network(
            network,
            TasteProfile(loves=pois[:5], checkins_per_friend=4),
            num_friends=6,
            seed=1,
        )
        assert result.ego_id == "fb_1"
        assert len(result.friend_ids) == 6
        assert result.friend_numeric_ids == tuple(range(2, 8))
        assert result.checkins_added == 24
        token = network.oauth.authorize(result.ego_id, "pw", now=0.0)
        assert len(network.get_friends(token)) == 6

    def test_hate_checkins(self, pois):
        network = SimulatedNetwork("facebook")
        result = populate_network(
            network,
            TasteProfile(
                loves=pois[:3], hates=pois[3:6],
                checkins_per_friend=2, hate_checkins_per_friend=1,
            ),
            num_friends=4,
            seed=2,
        )
        assert result.checkins_added == 4 * 3
        token = network.oauth.authorize(result.ego_id, "pw", now=0.0)
        hated_ids = {p.poi_id for p in pois[3:6]}
        negative = [
            c
            for fid in result.friend_ids
            for c in network.get_checkins(token, fid, 0, 100_000)
            if c.poi_id in hated_ids
        ]
        assert len(negative) == 4
        assert all("awful" in c.comment or "overpriced" in c.comment
                   or "greasy" in c.comment or "dreadful" in c.comment
                   or "filthy" in c.comment or "stale" in c.comment
                   or "noisy" in c.comment or "rude" in c.comment
                   or "bland" in c.comment or "dirty" in c.comment
                   for c in negative)

    def test_two_circles_coexist(self, pois):
        network = SimulatedNetwork("facebook")
        a = populate_network(
            network, TasteProfile(loves=pois[:3]), num_friends=3,
            start_user_id=1, seed=3,
        )
        b = populate_network(
            network, TasteProfile(loves=pois[3:6]), num_friends=3,
            start_user_id=100, seed=4,
        )
        assert not set(a.friend_ids) & set(b.friend_ids)
        token = network.oauth.authorize(a.ego_id, "pw", now=0.0)
        assert len(network.get_friends(token)) == 3  # circles are disjoint

    def test_validation(self, pois):
        network = SimulatedNetwork("facebook")
        with pytest.raises(ValidationError):
            populate_network(network, TasteProfile(loves=[]), num_friends=2)
        with pytest.raises(ValidationError):
            populate_network(
                network,
                TasteProfile(loves=pois[:1], hate_checkins_per_friend=1),
                num_friends=2,
            )
        with pytest.raises(ValidationError):
            populate_network(
                network, TasteProfile(loves=pois[:1]), num_friends=0
            )

    def test_end_to_end_with_platform(self, pois):
        """The helper's output drives a full personalized search."""
        platform = MoDisSENSE(PlatformConfig.small())
        try:
            platform.load_pois(pois)
            platform.text_processing.train(
                ReviewGenerator(seed=5, capacity=2000).labeled_texts(600)
            )
            result = populate_network(
                platform.plugins["facebook"],
                TasteProfile(loves=pois[:4], checkins_per_friend=3),
                num_friends=5,
                seed=6,
            )
            platform.register_user("facebook", result.ego_id, "pw",
                                   now=100_000.0)
            platform.collect(now=100_000)
            from repro import SearchQuery

            res = platform.search(
                SearchQuery(friend_ids=result.friend_numeric_ids,
                            sort_by="interest", limit=4)
            )
            assert res.pois
            assert {p.poi_id for p in res.pois} <= {
                p.poi_id for p in pois[:4]
            }
        finally:
            platform.shutdown()
