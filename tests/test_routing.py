"""Tests for client-side friend-to-region routing (the route-then-stream
personalized query fan-out) and the ``time_range_keys`` stop-key fix.

Routing must be an invisible optimization: the routed coprocessor path,
the broadcast path and the client-side baseline must all return the same
ranked answer, with routing only changing *which* regions get invoked.
"""

import random

import pytest

from repro.config import ClusterConfig
from repro.core.modules.query_answering import (
    QueryAnsweringModule,
    SearchQuery,
    _VisitScanRequest,
)
from repro.core.repositories.poi import POI, POIRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.geo import BoundingBox
from repro.hbase import HBaseCluster
from repro.hbase.bytes_util import salt_for
from repro.sqlstore import SqlEngine

#: First user id whose salt is ``0xffff`` — its rows live at the very top
#: of the key space, the range the seed's ``b"\xff" * 12`` stop-key
#: sentinel could not bound correctly.
TOP_SALT_UID = 46368


def build_module(num_regions=8, num_users=40, num_pois=12, seed=9):
    cluster = HBaseCluster(
        ClusterConfig(num_nodes=4, regions_per_table=num_regions)
    )
    pois = POIRepository(SqlEngine())
    visits = VisitsRepository(cluster, num_regions=num_regions)
    rng = random.Random(seed)
    poi_info = {}
    for pid in range(1, num_pois + 1):
        lat = rng.uniform(35.0, 41.0)
        lon = rng.uniform(20.0, 26.0)
        kws = tuple(rng.sample(("food", "coffee", "bar", "museum"), 2))
        poi_info[pid] = ("poi-%d" % pid, lat, lon, kws)
        pois.add(POI(poi_id=pid, name=poi_info[pid][0], lat=lat, lon=lon,
                     keywords=kws, category="misc"))
    for uid in range(1, num_users + 1):
        for _ in range(rng.randint(1, 6)):
            pid = rng.randint(1, num_pois)
            name, lat, lon, kws = poi_info[pid]
            visits.store(VisitStruct(
                user_id=uid, poi_id=pid, timestamp=rng.randint(1, 10_000),
                grade=round(rng.uniform(0.0, 1.0), 3), poi_name=name,
                lat=lat, lon=lon, keywords=kws,
            ))
    return QueryAnsweringModule(pois, visits), cluster


def ranked(result):
    return [(p.poi_id, pytest.approx(p.score), p.visit_count)
            for p in result.pois]


class TestRouteFriends:
    def test_every_friend_lands_in_its_owning_region(self):
        qa, cluster = build_module()
        try:
            visits = qa.visits
            friends = list(range(1, 41))
            routed = visits.route_friends(friends)
            covered = [f for bucket in routed.values() for f in bucket]
            assert sorted(covered) == friends  # no friend lost or doubled
            for region, bucket in routed.items():
                for friend in bucket:
                    start, _ = visits.time_range_keys(friend, None, None)
                    assert region.contains_row(start)
        finally:
            cluster.shutdown()

    def test_regions_without_friends_are_absent(self):
        qa, cluster = build_module()
        try:
            routed = qa.visits.route_friends([1])
            assert len(routed) == 1
        finally:
            cluster.shutdown()

    def test_empty_window_routes_nowhere(self):
        qa, cluster = build_module()
        try:
            assert qa.visits.route_friends([1, 2, 3], until=0) == {}
            assert qa.visits.route_friends([1, 2, 3], since=50, until=50) == {}
        finally:
            cluster.shutdown()


class TestRoutedEqualsBroadcast:
    """Same answers through every execution strategy, with filters on."""

    QUERIES = [
        SearchQuery(friend_ids=tuple(range(1, 31)), sort_by="interest"),
        SearchQuery(friend_ids=tuple(range(5, 25)), sort_by="hotness"),
        SearchQuery(friend_ids=tuple(range(1, 41)),
                    bbox=BoundingBox(36.0, 21.0, 39.0, 24.0)),
        SearchQuery(friend_ids=tuple(range(1, 41)), keywords=("coffee",)),
        SearchQuery(friend_ids=tuple(range(1, 41)), since=2000, until=8000),
    ]

    def test_routed_matches_client_side_baseline(self):
        qa, cluster = build_module()
        try:
            for query in self.QUERIES:
                routed = qa.search(query)
                baseline = qa.search_personalized_client_side(query)
                assert ranked(routed) == ranked(baseline), query
        finally:
            cluster.shutdown()

    def test_routed_matches_broadcast_fanout(self):
        qa, cluster = build_module()
        try:
            for query in self.QUERIES:
                routed = qa.search(query)
                # Broadcast: ship the full friend list to every region and
                # let the endpoint probe ownership per friend (seed path).
                request = _VisitScanRequest(
                    friend_ids=tuple(query.friend_ids),
                    bbox=query.bbox.as_tuple() if query.bbox else None,
                    keywords=query.keywords,
                    since=query.since,
                    until=query.until,
                    routed=False,
                )
                call = cluster.coprocessor_exec(
                    qa.visits.table.name, qa._coprocessor, request
                )
                broadcast = qa.merge_and_rank(query, call)
                assert ranked(routed) == ranked(broadcast), query
                assert call.regions_pruned == 0  # broadcast prunes nothing
        finally:
            cluster.shutdown()

    def test_pruning_is_reported(self):
        qa, cluster = build_module()
        try:
            res = qa.search(SearchQuery(friend_ids=(1,)))
            assert res.regions_used == 1
            assert res.regions_pruned == 7
            wide = qa.search(SearchQuery(friend_ids=tuple(range(1, 41))))
            assert wide.regions_used + wide.regions_pruned == 8
            assert wide.regions_used > 1
        finally:
            cluster.shutdown()

    def test_empty_window_query_invokes_no_region(self):
        qa, cluster = build_module()
        try:
            res = qa.search(SearchQuery(friend_ids=(1, 2, 3), until=0))
            assert res.pois == []
            assert res.regions_used == 0
            assert res.regions_pruned == 8
        finally:
            cluster.shutdown()


class TestStopKeyRegression:
    """``time_range_keys`` must bound (or leave open) the top of the key
    space correctly.  The seed fell back to a ``b"\\xff" * 12`` stop
    sentinel, which sorts *below* any 29-byte row key sharing its first
    12 bytes — tail-of-keyspace rows could silently fall out of scans.
    """

    def test_top_salt_uid_has_max_salt(self):
        assert salt_for(TOP_SALT_UID) == b"\xff\xff"

    def test_open_ended_stop_is_none_or_above_all_rows(self):
        row_key = VisitsRepository.row_key
        max64 = (1 << 64) - 1
        for uid in (1, TOP_SALT_UID, max64):
            start, stop = VisitsRepository.time_range_keys(uid, None, None)
            for ts in (0, 1, max64):
                for poi in (0, max64):
                    row = row_key(uid, ts, poi)
                    assert start <= row
                    assert stop is None or row < stop, (uid, ts, poi)

    def test_top_of_keyspace_user_is_scanned_and_routed(self):
        qa, cluster = build_module()
        try:
            visits = qa.visits
            visits.store(VisitStruct(user_id=TOP_SALT_UID, poi_id=1,
                                     timestamp=500, grade=1.0,
                                     poi_name="poi-1", lat=36.0, lon=22.0))
            got = list(visits.visits_of_user(TOP_SALT_UID))
            assert [(v.timestamp, v.poi_id) for v in got] == [(500, 1)]
            routed = visits.route_friends([TOP_SALT_UID])
            (region, bucket), = routed.items()
            assert bucket == [TOP_SALT_UID]
            # Max salt lands in the table's last region (open end key).
            assert region.end_key is None
            res = qa.search(SearchQuery(friend_ids=(TOP_SALT_UID,)))
            assert [p.poi_id for p in res.pois] == [1]
        finally:
            cluster.shutdown()

    def test_degenerate_windows_yield_empty_ranges(self):
        tk = VisitsRepository.time_range_keys
        for uid in (1, TOP_SALT_UID):
            start, stop = tk(uid, None, 0)
            assert start == stop  # until <= 0: nothing can match
            start, stop = tk(uid, 77, 77)
            assert stop is not None and stop <= start  # since == until
