"""Tests for HTable routing/splits and the cluster client + coprocessors."""

import pytest

from repro.config import ClusterConfig
from repro.errors import StorageError, TableExistsError, TableNotFoundError
from repro.hbase import (
    Cell,
    Coprocessor,
    HBaseCluster,
    HTable,
    TableDescriptor,
    encode_int,
)


def cell(row, value=b"v", ts=1):
    return Cell(row=row, family="f", qualifier=b"q", timestamp=ts, value=value)


class TestHTable:
    def test_pre_split_region_count(self):
        table = HTable(TableDescriptor(name="t", families=["f"], num_regions=8))
        assert len(table.regions) == 8

    def test_explicit_split_points(self):
        table = HTable(
            TableDescriptor(
                name="t", families=["f"], split_points=[b"h", b"p"]
            )
        )
        assert len(table.regions) == 3
        assert table.region_for_row(b"a").end_key == b"h"
        assert table.region_for_row(b"m").start_key == b"h"
        assert table.region_for_row(b"z").start_key == b"p"

    def test_unsorted_split_points_rejected(self):
        with pytest.raises(StorageError):
            HTable(
                TableDescriptor(name="t", families=["f"], split_points=[b"p", b"h"])
            ).region_for_row(b"a")

    def test_routing_covers_whole_keyspace(self):
        table = HTable(TableDescriptor(name="t", families=["f"], num_regions=16))
        for i in range(0, 1 << 16, 997):
            row = encode_int(i, 2) + b"suffix"
            region = table.region_for_row(row)
            assert region.contains_row(row)

    def test_put_get_across_regions(self):
        table = HTable(TableDescriptor(name="t", families=["f"], num_regions=4))
        for i in range(200):
            table.put(cell(encode_int(i * 327, 2) + b"-k", value=b"v%d" % i))
        for i in range(200):
            got = table.get(encode_int(i * 327, 2) + b"-k", "f", b"q")
            assert got == b"v%d" % i

    def test_multi_region_scan_in_key_order(self):
        table = HTable(TableDescriptor(name="t", families=["f"], num_regions=4))
        rows = [encode_int(i, 2) for i in range(0, 1 << 16, 1111)]
        for row in reversed(rows):
            table.put(cell(row))
        scanned = [c.row for c in table.scan("f")]
        assert scanned == sorted(rows)

    def test_automatic_split_on_row_limit(self):
        table = HTable(
            TableDescriptor(
                name="t", families=["f"], num_regions=1, max_rows_per_region=50
            )
        )
        for i in range(120):
            table.put(cell(b"row%04d" % i))
        assert len(table.regions) >= 2
        # Everything still readable after the split.
        for i in range(120):
            assert table.get(b"row%04d" % i, "f", b"q") == b"v"

    def test_manual_split_preserves_data(self):
        table = HTable(TableDescriptor(name="t", families=["f"], num_regions=1))
        for i in range(40):
            table.put(cell(b"k%02d" % i))
        table.split_region(table.regions[0])
        assert len(table.regions) == 2
        assert [c.row for c in table.scan("f")] == [b"k%02d" % i for i in range(40)]

    def test_split_single_row_is_noop(self):
        table = HTable(TableDescriptor(name="t", families=["f"], num_regions=1))
        table.put(cell(b"only"))
        table.split_region(table.regions[0])
        assert len(table.regions) == 1


class TestHBaseCluster:
    def test_create_and_drop(self):
        cluster = HBaseCluster(ClusterConfig(num_nodes=2))
        cluster.create_table(TableDescriptor(name="a", families=["f"]))
        with pytest.raises(TableExistsError):
            cluster.create_table(TableDescriptor(name="a", families=["f"]))
        assert cluster.table_names() == ["a"]
        cluster.drop_table("a")
        with pytest.raises(TableNotFoundError):
            cluster.table("a")
        with pytest.raises(TableNotFoundError):
            cluster.drop_table("a")
        cluster.shutdown()

    def test_coprocessor_exec_merges_all_regions(self):
        cluster = HBaseCluster(ClusterConfig(num_nodes=4))
        table = cluster.create_table(
            TableDescriptor(name="t", families=["f"], num_regions=8)
        )
        for i in range(256):
            table.put(cell(encode_int(i * 256, 2), value=encode_int(i)))

        class CountCoprocessor(Coprocessor):
            def run(self, context, request):
                return [sum(1 for _ in context.scan("f"))]

            def merge(self, partials):
                return sum(p[0] for p in partials if p)

        call = cluster.coprocessor_exec("t", CountCoprocessor(), request=None)
        assert call.result == 256
        assert call.records_scanned == 256
        assert call.latency_ms > 0
        cluster.shutdown()

    def test_concurrent_coprocessor_calls_share_cluster(self):
        cluster = HBaseCluster(ClusterConfig(num_nodes=2))
        table = cluster.create_table(
            TableDescriptor(name="t", families=["f"], num_regions=4)
        )
        for i in range(400):
            table.put(cell(encode_int(i * 163, 2), value=b"x"))

        class ScanAll(Coprocessor):
            def run(self, context, request):
                return [c.value for c in context.scan("f")]

        single = cluster.coprocessor_exec("t", ScanAll(), None)
        many = cluster.coprocessor_exec_many("t", ScanAll(), [None] * 8)
        assert all(len(c.result) == 400 for c in many)
        mean = sum(c.latency_ms for c in many) / len(many)
        assert mean > single.latency_ms
        cluster.shutdown()

    def test_per_region_records_reported(self):
        cluster = HBaseCluster(ClusterConfig(num_nodes=2))
        table = cluster.create_table(
            TableDescriptor(name="t", families=["f"], num_regions=4)
        )
        table.put(cell(encode_int(0, 2)))

        class ScanAll(Coprocessor):
            def run(self, context, request):
                return [c.row for c in context.scan("f")]

        call = cluster.coprocessor_exec("t", ScanAll(), None)
        assert sum(call.per_region_records.values()) == 1
        assert len(call.per_region_records) == 4
        cluster.shutdown()
