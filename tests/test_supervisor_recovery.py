"""Self-healing cluster drills: heartbeat leases, WAL-split recovery.

The contract under test: with the supervisor enabled, a seeded node
kill heals itself — missed heartbeats expire the lease, the dead
server's WAL is split by region, regions reopen on survivors with their
unflushed cells replayed — and post-recovery answers are byte-identical
to a never-failed oracle, with no test-harness ``recover_node`` call
anywhere.  With the supervisor off, behavior is exactly the manual
fail/recover model of the previous PRs.
"""

import warnings

import pytest

from repro.cluster import ClusterSimulation
from repro.config import (
    ClusterConfig,
    FaultsConfig,
    IngestConfig,
    PlatformConfig,
    SupervisorConfig,
)
from repro.core.modules.query_answering import SearchQuery
from repro.core.platform import MoDisSENSE
from repro.core.repositories.poi import POI
from repro.core.repositories.visits import VisitStruct
from repro.core.scheduler import build_platform_scheduler
from repro.errors import ConfigError
from repro.hbase import Cell, HBaseCluster, RegionWALHandle, ServerWAL
from repro.hbase.wal import WriteAheadLog


def _fingerprint(result):
    return (
        [(p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
         for p in result.pois],
        result.degraded,
        result.coverage,
    )


def _platform(supervised=True, nodes=4, regions=8, ingest=False,
              faults=True, seed=42):
    cfg = PlatformConfig()
    cfg.cluster = ClusterConfig(num_nodes=nodes, regions_per_table=regions)
    if faults:
        cfg.faults = FaultsConfig(enabled=True, seed=seed)
    cfg.supervisor = SupervisorConfig(enabled=supervised)
    if ingest:
        cfg.ingest = IngestConfig(enabled=True)
    p = MoDisSENSE(cfg)
    p.poi_repository.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                             keywords=("x",), category="cafe"))
    return p


def _seed_visits(p, users=40):
    for uid in range(1, users):
        p.visits_repository.store(VisitStruct(
            user_id=uid, poi_id=1, timestamp=uid, grade=0.5, poi_name="A",
            lat=37.98, lon=23.73, keywords=("x",)))


QUERY = SearchQuery(friend_ids=tuple(range(1, 40)), sort_by="hotness")


def _cell(row, ts=1, family="d", value=b"v"):
    return Cell(row=row, family=family, qualifier=b"q", timestamp=ts,
                value=value)


class TestServerWAL:
    """The per-server log + per-region handle that recovery splits."""

    def test_handle_matches_plain_wal_semantics(self):
        plain = WriteAheadLog()
        server = ServerWAL(node_id=0)
        handle = RegionWALHandle(server, region_id=7)
        cells = [_cell(b"r%d" % i, ts=i) for i in range(5)]
        for log in (plain, handle):
            assert log.append(cells[0]) == 1
            assert log.append_batch(cells[1:4]) == (2, 4)
            assert log.append_batch([]) == (0, 0)
            assert log.last_sequence == 4
            assert len(log) == 4
            assert log.sync_count == 2
            assert [r.sequence for r in log.records_after(1)] == [2, 3, 4]
        assert list(plain.replay()) == list(handle.replay())

    def test_truncate_archives_instead_of_discarding(self):
        server = ServerWAL(node_id=0)
        handle = RegionWALHandle(server, region_id=3)
        handle.append_batch([_cell(b"r%d" % i, ts=i) for i in range(4)])
        assert handle.truncate_to(2) == 2
        assert len(handle) == 2
        archived = server.archived_for(3)
        assert [r.sequence for r in archived] == [1, 2]

    def test_archive_capacity_bounds_per_region(self):
        server = ServerWAL(node_id=0, archive_capacity=3)
        handle = RegionWALHandle(server, region_id=1)
        handle.append_batch([_cell(b"r%d" % i, ts=i) for i in range(10)])
        handle.truncate_to(10)
        assert [r.sequence for r in server.archived_for(1)] == [8, 9, 10]

    def test_split_by_region_partitions_live_records(self):
        server = ServerWAL(node_id=0)
        h1 = RegionWALHandle(server, region_id=1)
        h2 = RegionWALHandle(server, region_id=2)
        h1.append(_cell(b"a"))
        h2.append_batch([_cell(b"b"), _cell(b"c")])
        split = server.split_by_region()
        assert set(split) == {1, 2}
        assert len(split[1]) == 1 and len(split[2]) == 2

    def test_rehome_moves_live_and_archived_records(self):
        old = ServerWAL(node_id=0)
        new = ServerWAL(node_id=1)
        handle = RegionWALHandle(old, region_id=5)
        handle.append_batch([_cell(b"r%d" % i, ts=i) for i in range(4)])
        handle.truncate_to(2)
        handle.rehome(new)
        assert handle.server is new
        assert old.records_for(5) == [] and old.archived_for(5) == []
        assert [r.sequence for r in new.records_for(5)] == [3, 4]
        assert [r.sequence for r in new.archived_for(5)] == [1, 2]
        # Appends continue with the same per-region sequence counter.
        assert handle.append(_cell(b"z", ts=99)) == 5

    def test_drop_torn_tail(self):
        for log in (WriteAheadLog(),
                    RegionWALHandle(ServerWAL(0), region_id=1)):
            log.append_batch([_cell(b"r%d" % i, ts=i) for i in range(3)])
            log.corrupt_tail()
            assert len(list(log.replay())) == 2
            assert log.drop_torn_tail() == 1
            assert len(list(log.replay())) == 2
            assert log.drop_torn_tail() == 0


class TestFailNodeValidation:
    """Regression: fail_node must validate before mutating state."""

    def test_rejected_failure_leaves_node_live(self):
        sim = ClusterSimulation(ClusterConfig(num_nodes=2))
        sim.place_regions(list(range(4)))
        sim.fail_node(0)
        with pytest.raises(ConfigError):
            sim.fail_node(1)
        # The failed call must not have marked node 1 failed: it still
        # serves, and recovery of node 0 still has a survivor to lean on.
        assert sim.is_live(1)
        assert sim.live_node_count == 1
        assert all(n == 1 for n in sim.region_placement.values())
        sim.recover_node(0)
        assert sim.live_node_count == 2

    def test_crash_node_validates_before_mutating(self):
        sim = ClusterSimulation(ClusterConfig(num_nodes=2))
        sim.place_regions(list(range(4)))
        sim.crash_node(0)
        with pytest.raises(ConfigError):
            sim.crash_node(1)
        assert sim.is_live(1)


class TestCrashSemantics:
    def test_crash_strands_regions_in_place(self):
        sim = ClusterSimulation(ClusterConfig(num_nodes=4))
        sim.place_regions(list(range(8)))
        stranded = sim.crash_node(1)
        assert stranded == sim.regions_on(1)
        assert not sim.is_live(1)
        # Unlike fail_node, placement still points at the corpse.
        assert all(sim.region_placement[r] == 1 for r in stranded)

    def test_reassign_validates_targets(self):
        sim = ClusterSimulation(ClusterConfig(num_nodes=4))
        sim.place_regions(list(range(8)))
        sim.crash_node(1)
        stranded = sim.regions_on(1)
        with pytest.raises(ConfigError):
            sim.reassign_regions({stranded[0]: 1})  # dead target
        with pytest.raises(ConfigError):
            sim.reassign_regions({stranded[0]: 99})  # unknown target
        with pytest.raises(ConfigError):
            sim.reassign_regions({9999: 0})  # unplaced region
        sim.reassign_regions({r: 0 for r in stranded})
        assert all(sim.region_placement[r] == 0 for r in stranded)

    def test_cluster_crash_requires_supervisor(self):
        cluster = HBaseCluster(ClusterConfig(num_nodes=4,
                                             regions_per_table=8))
        with pytest.raises(ConfigError):
            cluster.crash_node(0)


class TestEndToEndRecoveryDrill:
    def test_seeded_kill_heals_without_manual_recover(self):
        oracle = _platform(supervised=True)
        _seed_visits(oracle)
        expected = _fingerprint(oracle.search(QUERY))
        assert expected[1] is False and expected[2] == 1.0

        p = _platform(supervised=True)
        _seed_visits(p)
        scheduler = build_platform_scheduler(p)
        victim = 1
        p.fault_injector.schedule_node_event(2, "fail", victim)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            p.search(QUERY)                    # fan-out 1: clean
            during = p.search(QUERY)           # fan-out 2: crash lands
        assert during.degraded and during.coverage < 1.0

        # No recover_node anywhere: the supervisor's heartbeat job must
        # detect the missed lease and heal.  Advance in sub-lease steps
        # so detection latency is honestly the lease timeout.
        lease = p.config.supervisor.lease_timeout_s
        period = p.config.supervisor.heartbeat_period_s
        for _ in range(int((lease + 2 * period) / period) + 1):
            scheduler.advance_by(period)

        history = p.supervisor.recovery_history
        assert len(history) == 1
        record = history[0]
        assert record["node"] == victim
        assert record["cells_replayed"] > 0
        # MTTR gate: detection + replay within 2x the lease timeout.
        assert record["mttr_s"] <= 2 * lease

        after = p.search(QUERY)
        assert _fingerprint(after) == expected
        p.shutdown()
        oracle.shutdown()

    def test_recovery_emits_events_and_metrics(self):
        p = _platform(supervised=True)
        _seed_visits(p)
        scheduler = build_platform_scheduler(p)
        p.fault_injector.schedule_node_event(1, "fail", 2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            p.search(QUERY)
        for _ in range(8):
            scheduler.advance_by(1.0)
        events = p.telemetry.events.query(event_type="node.lease_missed")
        assert len(events) == 1 and events[0]["node"] == 2
        recovered = p.telemetry.events.query(event_type="region.recovered")
        assert recovered and all(e["from_node"] == 2 for e in recovered)
        assert p.metrics.counter("supervisor.lease_missed") == 1
        assert p.metrics.counter("region.recovered") == len(recovered)
        assert p.metrics.gauge("supervisor.mttr_s") > 0.0
        # The recovery_mttr SLO saw the sample and stayed healthy.
        scheduler.advance_by(1.0)
        health = p.telemetry.health()
        mttr = [s for s in health["slos"] if s["name"] == "recovery_mttr"]
        assert mttr and mttr[0]["state"] == "healthy"
        p.shutdown()

    def test_load_aware_placement_spreads_by_weight(self):
        p = _platform(supervised=True, nodes=4, regions=8)
        _seed_visits(p, users=200)
        sup = p.supervisor
        sim = p.hbase.simulation
        victim = 1
        stranded = sim.regions_on(victim)
        sim._failed_nodes.add(victim)  # place as if dead, without I/O
        mapping = sup._place_on_survivors(stranded)
        sim._failed_nodes.discard(victim)
        assert set(mapping) == set(stranded)
        assert victim not in mapping.values()
        assert all(t in sim.live_nodes() for t in mapping.values())
        p.shutdown()

    def test_node_rejoin_renews_lease(self):
        p = _platform(supervised=True)
        _seed_visits(p)
        scheduler = build_platform_scheduler(p)
        p.fault_injector.schedule_node_event(1, "fail", 3)
        p.fault_injector.schedule_node_event(2, "recover", 3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            p.search(QUERY)
        for _ in range(6):
            scheduler.advance_by(1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            p.search(QUERY)  # fan-out 2 applies the recover action
        for _ in range(3):
            scheduler.advance_by(1.0)
        leases = {row["node"]: row for row in p.supervisor.lease_table()}
        assert leases[3]["live"] and not leases[3]["declared_dead"]
        rejoined = p.telemetry.events.query(event_type="node.rejoined")
        assert [e["node"] for e in rejoined] == [3]
        result = p.search(QUERY)
        assert not result.degraded
        p.shutdown()


class TestForcedDrill:
    def test_force_drill_is_a_real_crash_and_recovery(self):
        p = _platform(supervised=True, faults=False)
        _seed_visits(p)
        expected = _fingerprint(p.search(QUERY))
        record = p.supervisor.force_drill()
        assert record["drill"] is True
        assert record["cells_replayed"] >= 0
        assert _fingerprint(p.search(QUERY)) == expected
        p.shutdown()

    def test_force_drill_rejects_dead_or_unknown_node(self):
        p = _platform(supervised=True, faults=False)
        _seed_visits(p)
        p.supervisor.force_drill(node_id=3)
        with pytest.raises(ConfigError):
            p.supervisor.force_drill(node_id=3)  # already dead
        p.shutdown()


class TestIngestExactlyOnce:
    def test_supervisor_replay_never_double_folds(self):
        """WAL-split replay rebuilds *storage*; the ingest tier's fold
        watermarks are untouched, so incremental HotIn state neither
        loses nor double-counts a delta across a node crash."""
        p = _platform(supervised=True, ingest=True, faults=True)
        oracle = _platform(supervised=True, ingest=True, faults=False)
        for plat in (p, oracle):
            for uid in range(1, 40):
                plat.ingest.submit(VisitStruct(
                    user_id=uid, poi_id=1, timestamp=uid, grade=0.5,
                    poi_name="A", lat=37.98, lon=23.73, keywords=("x",)))
            assert plat.ingest.drain(timeout_s=30.0)
        scheduler = build_platform_scheduler(p)
        p.fault_injector.schedule_node_event(1, "fail", 1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            p.search(QUERY)
        for _ in range(6):
            scheduler.advance_by(1.0)
        assert p.supervisor.recovery_history
        # Incremental hotness identical to the never-crashed twin.
        assert (p.incremental_hotin.snapshot()
                == oracle.incremental_hotin.snapshot())
        # Exactly-once, stated directly against the fold watermarks:
        # after WAL-split replay, no region carries a logged record past
        # what the ingest tier already folded — an applier recovery
        # would replay nothing, so no delta can ever land twice.
        for region in p.visits_repository.table.regions:
            if region.wal is None:
                continue
            watermark = p.ingest._folded_seq.get(region.region_id, 0)
            assert list(region.wal.records_after(watermark)) == []
        # Ingestion continues normally on the healed cluster and stays
        # in lockstep with the twin.
        for plat in (p, oracle):
            for uid in range(100, 120):
                plat.ingest.submit(VisitStruct(
                    user_id=uid, poi_id=1, timestamp=uid, grade=1.0,
                    poi_name="A", lat=37.98, lon=23.73, keywords=("x",)))
            assert plat.ingest.drain(timeout_s=30.0)
        assert (p.incremental_hotin.snapshot()
                == oracle.incremental_hotin.snapshot())
        p.shutdown()
        oracle.shutdown()


class TestSupervisorOffUnchanged:
    def test_disabled_platform_has_no_supervisor_surface(self):
        p = _platform(supervised=False)
        assert p.supervisor is None
        assert p.describe()["supervisor"] == {"enabled": False}
        scheduler = build_platform_scheduler(p)
        assert "supervisor_heartbeat" not in scheduler._jobs
        assert "storage_scrub" not in scheduler._jobs
        p.shutdown()

    def test_results_identical_with_and_without_supervisor(self):
        plain = _platform(supervised=False, faults=False)
        supervised = _platform(supervised=True, faults=False)
        _seed_visits(plain)
        _seed_visits(supervised)
        assert (_fingerprint(plain.search(QUERY))
                == _fingerprint(supervised.search(QUERY)))
        plain.shutdown()
        supervised.shutdown()

    def test_manual_fail_recover_still_works_without_supervisor(self):
        p = _platform(supervised=False)
        _seed_visits(p)
        expected = _fingerprint(p.search(QUERY))
        p.hbase.fail_node(0)
        p.hbase.recover_node(0)
        assert _fingerprint(p.search(QUERY)) == expected
        p.shutdown()
