"""Tests for repro.geo.distance and repro.geo.geohash."""

import math

import pytest

from repro.errors import ValidationError
from repro.geo import (
    geohash_decode,
    geohash_encode,
    geohash_neighbors,
    haversine_m,
    euclidean_approx_m,
)
from repro.geo.distance import meters_per_deg_lon, offset_point_m
from repro.geo.geohash import geohash_bbox


class TestDistance:
    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.2 km everywhere.
        d = haversine_m(37.0, 23.0, 38.0, 23.0)
        assert 110_000 < d < 112_500

    def test_equirectangular_close_to_haversine_at_city_scale(self):
        lat1, lon1 = 37.9838, 23.7275
        lat2, lon2 = 37.9930, 23.7400
        h = haversine_m(lat1, lon1, lat2, lon2)
        e = euclidean_approx_m(lat1, lon1, lat2, lon2)
        assert abs(h - e) / h < 0.01

    def test_meters_per_deg_lon_shrinks_with_latitude(self):
        assert meters_per_deg_lon(60.0) < meters_per_deg_lon(0.0)
        assert meters_per_deg_lon(60.0) == pytest.approx(
            meters_per_deg_lon(0.0) * math.cos(math.radians(60.0)), rel=1e-9
        )

    def test_offset_point_roundtrip(self):
        lat, lon = offset_point_m(37.98, 23.73, 500.0, -300.0)
        d = haversine_m(37.98, 23.73, lat, lon)
        assert d == pytest.approx(math.hypot(500.0, 300.0), rel=0.01)

    def test_antipodal_distance_bounded(self):
        # asin clipping keeps the result finite and near pi*R.
        d = haversine_m(0.0, 0.0, 0.0, 180.0)
        assert 20_000_000 < d < 20_040_000


class TestGeohash:
    def test_roundtrip_precision9(self):
        lat, lon = 37.9838, 23.7275
        decoded_lat, decoded_lon, lat_err, lon_err = geohash_decode(
            geohash_encode(lat, lon, 9)
        )
        assert abs(decoded_lat - lat) <= lat_err * 2
        assert abs(decoded_lon - lon) <= lon_err * 2
        assert lat_err < 1e-4

    def test_known_value(self):
        # Reference value from the original geohash.org implementation.
        assert geohash_encode(57.64911, 10.40744, 11) == "u4pruydqqvj"

    def test_prefix_property(self):
        # A longer geohash refines, never relocates: prefixes agree.
        full = geohash_encode(37.98, 23.73, 10)
        for precision in range(1, 10):
            assert geohash_encode(37.98, 23.73, precision) == full[:precision]

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            geohash_encode(95.0, 0.0)
        with pytest.raises(ValidationError):
            geohash_encode(0.0, 0.0, precision=0)
        with pytest.raises(ValidationError):
            geohash_decode("")
        with pytest.raises(ValidationError):
            geohash_decode("aio")  # a, i, o, l are not in the alphabet

    def test_neighbors_are_adjacent(self):
        code = geohash_encode(37.98, 23.73, 6)
        neighbors = geohash_neighbors(code)
        assert 3 <= len(neighbors) <= 8
        assert code not in neighbors
        own_box = geohash_bbox(code)
        for n in neighbors:
            assert len(n) == len(code)
            # Every neighbour's box touches or overlaps ours.
            assert geohash_bbox(n).expand_m(1.0).intersects(own_box)

    def test_bbox_contains_encoded_point(self):
        code = geohash_encode(40.64, 22.94, 7)
        box = geohash_bbox(code)
        assert box.contains_coords(40.64, 22.94)
