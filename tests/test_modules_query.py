"""Tests for the Query Answering and Trending modules."""

import pytest

from repro.config import ClusterConfig
from repro.core.modules.query_answering import (
    QueryAnsweringModule,
    SearchQuery,
    VisitScanCoprocessor,
)
from repro.core.modules.trending import TrendingModule, TrendingQuery
from repro.core.repositories.poi import POI, POIRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.errors import QueryError
from repro.geo import BoundingBox
from repro.hbase import HBaseCluster
from repro.sqlstore import SqlEngine


@pytest.fixture()
def setup():
    cluster = HBaseCluster(ClusterConfig(num_nodes=4, regions_per_table=8))
    pois = POIRepository(SqlEngine())
    visits = VisitsRepository(cluster, num_regions=8)

    # Three POIs: an Athens taverna, an Athens cafe, a Thessaloniki bar.
    pois.add(POI(poi_id=1, name="Taverna", lat=37.98, lon=23.73,
                 keywords=("food", "dinner"), category="restaurant"))
    pois.add(POI(poi_id=2, name="Cafe", lat=37.99, lon=23.74,
                 keywords=("coffee",), category="cafe"))
    pois.add(POI(poi_id=3, name="Bar", lat=40.64, lon=22.94,
                 keywords=("drinks",), category="bar"))

    def visit(uid, poi_id, ts, grade):
        p = {1: ("Taverna", 37.98, 23.73, ("food", "dinner")),
             2: ("Cafe", 37.99, 23.74, ("coffee",)),
             3: ("Bar", 40.64, 22.94, ("drinks",))}[poi_id]
        visits.store(VisitStruct(user_id=uid, poi_id=poi_id, timestamp=ts,
                                 grade=grade, poi_name=p[0], lat=p[1],
                                 lon=p[2], keywords=p[3]))

    # Friends 10, 11 love the taverna; 12 prefers the cafe; everyone
    # dislikes the bar.
    visit(10, 1, 100, 0.9)
    visit(10, 1, 200, 0.8)
    visit(11, 1, 150, 1.0)
    visit(11, 2, 160, 0.4)
    visit(12, 2, 170, 0.9)
    visit(12, 3, 180, 0.1)
    visit(13, 3, 190, 0.2)  # user 13 is NOT in the friend sets below

    qa = QueryAnsweringModule(pois, visits)
    yield qa, pois, visits
    cluster.shutdown()


ATHENS = BoundingBox(37.9, 23.6, 38.1, 23.8)


class TestPersonalizedSearch:
    def test_interest_ranking_averages_friend_grades(self, setup):
        qa, _, _ = setup
        res = qa.search(SearchQuery(friend_ids=(10, 11, 12), sort_by="interest"))
        assert res.personalized
        names = [p.name for p in res.pois]
        assert names[0] == "Taverna"  # mean grade 0.9
        taverna = res.pois[0]
        assert taverna.score == pytest.approx((0.9 + 0.8 + 1.0) / 3)
        assert taverna.visit_count == 3

    def test_hotness_ranking_counts_visits(self, setup):
        qa, _, _ = setup
        res = qa.search(SearchQuery(friend_ids=(10, 11, 12), sort_by="hotness"))
        assert res.pois[0].name == "Taverna"
        assert res.pois[0].score == 3.0

    def test_only_selected_friends_count(self, setup):
        qa, _, _ = setup
        res = qa.search(SearchQuery(friend_ids=(12,), sort_by="interest"))
        assert {p.poi_id for p in res.pois} == {2, 3}

    def test_bbox_filter(self, setup):
        qa, _, _ = setup
        res = qa.search(
            SearchQuery(friend_ids=(10, 11, 12), bbox=ATHENS, sort_by="interest")
        )
        assert {p.poi_id for p in res.pois} == {1, 2}

    def test_keyword_filter(self, setup):
        qa, _, _ = setup
        res = qa.search(
            SearchQuery(friend_ids=(10, 11, 12), keywords=("coffee",))
        )
        assert [p.poi_id for p in res.pois] == [2]

    def test_time_window(self, setup):
        qa, _, _ = setup
        res = qa.search(
            SearchQuery(friend_ids=(10, 11, 12), since=160, until=200,
                        sort_by="hotness")
        )
        # Only visits at ts 160..190 qualify: cafe x2, bar x1 (friend 12).
        by_id = {p.poi_id: p for p in res.pois}
        assert set(by_id) == {2, 3}
        assert by_id[2].visit_count == 2

    def test_limit(self, setup):
        qa, _, _ = setup
        res = qa.search(SearchQuery(friend_ids=(10, 11, 12), limit=1))
        assert len(res.pois) == 1

    def test_latency_metadata_present(self, setup):
        qa, _, _ = setup
        res = qa.search(SearchQuery(friend_ids=(10, 11, 12)))
        assert res.latency_ms > 0
        assert res.records_scanned >= 6
        # Routed fan-out: only regions owning queried friends are
        # invoked; the rest are pruned client-side.
        assert 1 <= res.regions_used <= 3
        assert res.regions_used + res.regions_pruned == 8
        assert res.cells_decoded <= res.records_scanned

    def test_unknown_friends_harmless(self, setup):
        qa, _, _ = setup
        res = qa.search(SearchQuery(friend_ids=(997, 998)))
        assert res.pois == []

    def test_invalid_sort_rejected(self):
        with pytest.raises(QueryError):
            SearchQuery(friend_ids=(1,), sort_by="wat")

    def test_batch_matches_single(self, setup):
        qa, _, _ = setup
        q = SearchQuery(friend_ids=(10, 11, 12), sort_by="interest")
        single = qa.search(q)
        batch = qa.search_personalized_batch([q, q, q])
        for res in batch:
            assert [p.poi_id for p in res.pois] == [
                p.poi_id for p in single.pois
            ]

    def test_batch_rejects_non_personalized(self, setup):
        qa, _, _ = setup
        with pytest.raises(QueryError):
            qa.search_personalized_batch([SearchQuery()])

    def test_client_side_baseline_same_answer(self, setup):
        qa, _, _ = setup
        q = SearchQuery(friend_ids=(10, 11, 12), sort_by="interest")
        copro = qa.search(q)
        client = qa.search_personalized_client_side(q)
        assert [p.poi_id for p in client.pois] == [p.poi_id for p in copro.pois]
        for a, b in zip(client.pois, copro.pois):
            assert a.score == pytest.approx(b.score)


class TestNonPersonalizedSearch:
    def test_sql_path_used(self, setup):
        qa, pois, _ = setup
        pois.update_hotin(1, hotness=10.0, interest=0.9)
        pois.update_hotin(2, hotness=20.0, interest=0.5)
        res = qa.search(SearchQuery(sort_by="hotness", limit=2))
        assert not res.personalized
        assert [p.poi_id for p in res.pois] == [2, 1]
        # SQL path reports no coprocessor activity.
        assert res.regions_used == 0

    def test_bbox_and_keywords_on_sql_path(self, setup):
        qa, _, _ = setup
        res = qa.search(SearchQuery(bbox=ATHENS, keywords=("food",)))
        assert [p.poi_id for p in res.pois] == [1]


class TestTrending:
    def test_personalized_trending_counts_recent_visits(self, setup):
        qa, _, _ = setup
        trending = TrendingModule(qa)
        res = trending.trending(
            TrendingQuery(now=200, window_s=60, friend_ids=(10, 11, 12), limit=2)
        )
        # Window [140, 200): taverna x2 (ts 150, 200? no — until=now
        # exclusive), cafe x2, bar x1.
        assert res.personalized
        assert len(res.pois) == 2

    def test_global_trending_uses_hotness(self, setup):
        qa, pois, _ = setup
        pois.update_hotin(3, hotness=42.0, interest=0.1)
        trending = TrendingModule(qa)
        res = trending.trending(TrendingQuery(now=1000, window_s=500, limit=1))
        assert res.pois[0].poi_id == 3

    def test_invalid_window(self):
        with pytest.raises(QueryError):
            TrendingQuery(now=100, window_s=0)
