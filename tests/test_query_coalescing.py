"""Concurrency hammer for single-flight query coalescing.

N threads fire the *same* personalized query simultaneously; exactly one
fan-out must execute (observable through the HBase client's fan-out
epoch), the other N-1 callers must share its result, and the whole herd
must agree bit-for-bit.  Also covers leader-exception propagation,
distinct queries not coalescing, flight-table cleanup, and deterministic
rankings across repeated rounds.
"""

import threading
import time

import pytest

from repro.config import ClusterConfig
from repro.core.modules.query_answering import (
    QueryAnsweringModule,
    SearchQuery,
)
from repro.core.monitoring import PlatformMetrics
from repro.core.repositories.poi import POI, POIRepository
from repro.core.repositories.visits import VisitsRepository, VisitStruct
from repro.errors import QueryError
from repro.hbase import HBaseCluster
from repro.sqlstore import SqlEngine

HERD = 8
GATE_TIMEOUT_S = 10.0


def _build_stack(users=30, regions=8, nodes=4, metrics=None):
    cluster = HBaseCluster(
        ClusterConfig(num_nodes=nodes, regions_per_table=regions)
    )
    pois = POIRepository(SqlEngine())
    pois.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                 keywords=("x",), category="cafe"))
    pois.add(POI(poi_id=2, name="B", lat=37.99, lon=23.75,
                 keywords=("y",), category="bar"))
    visits = VisitsRepository(cluster, num_regions=regions)
    for uid in range(1, users + 1):
        visits.store(VisitStruct(user_id=uid, poi_id=1 + uid % 2,
                                 timestamp=uid, grade=0.5,
                                 poi_name="AB"[uid % 2],
                                 lat=37.98, lon=23.73,
                                 keywords=("x", "y")))
    qa = QueryAnsweringModule(
        pois, visits, metrics=metrics, coalesce=True
    )
    return cluster, qa


def _fingerprint(result):
    return [
        (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
        for p in result.pois
    ]


def _gate_until_herd(qa, key, herd_size):
    """Make the flight leader wait (inside its fan-out function) until
    the rest of the herd is blocked on the flight, so the test proves
    coalescing rather than lucky sequencing."""
    inner = qa.search_personalized_batch

    def gated(queries):
        deadline = time.monotonic() + GATE_TIMEOUT_S
        while qa.single_flight.waiting(key) < herd_size - 1:
            if time.monotonic() > deadline:
                raise AssertionError("herd never assembled")
            time.sleep(0.001)
        return inner(queries)

    qa.search_personalized_batch = gated


def _hammer(qa, query, herd_size):
    """Fire ``herd_size`` concurrent qa.search(query); returns results
    and exceptions index-aligned with the threads."""
    results = [None] * herd_size
    errors = [None] * herd_size
    start = threading.Barrier(herd_size)

    def worker(i):
        start.wait()
        try:
            results[i] = qa.search(query)
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            errors[i] = exc

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(herd_size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=GATE_TIMEOUT_S * 2)
        assert not t.is_alive(), "hammer thread deadlocked"
    return results, errors


class TestCoalescing:
    def test_identical_herd_runs_one_fanout(self):
        metrics = PlatformMetrics()
        cluster, qa = _build_stack(metrics=metrics)
        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, 31)), sort_by="interest"
            )
            key = QueryAnsweringModule._coalesce_key(query)
            _gate_until_herd(qa, key, HERD)
            epoch_before = cluster._fanout_epoch
            results, errors = _hammer(qa, query, HERD)
            assert errors == [None] * HERD
            # Exactly one fan-out hit the storage tier for the herd.
            assert cluster._fanout_epoch - epoch_before == 1
            assert metrics.counter("queries.coalesced") == HERD - 1
            assert qa.single_flight.coalesced_total == HERD - 1
            fingerprints = {tuple(map(tuple, _fingerprint(r)))
                            for r in results}
            assert len(fingerprints) == 1
            assert results[0].pois  # the shared answer is a real answer
        finally:
            cluster.shutdown()

    def test_flight_table_empty_after_round(self):
        cluster, qa = _build_stack()
        try:
            query = SearchQuery(friend_ids=(1, 2, 3), sort_by="hotness")
            _gate_until_herd(
                qa, QueryAnsweringModule._coalesce_key(query), 4
            )
            _hammer(qa, query, 4)
            assert qa.single_flight.in_flight() == 0
            assert qa.single_flight.waiting(
                QueryAnsweringModule._coalesce_key(query)
            ) == 0
        finally:
            cluster.shutdown()

    def test_distinct_queries_do_not_coalesce(self):
        metrics = PlatformMetrics()
        cluster, qa = _build_stack(metrics=metrics)
        try:
            queries = [
                SearchQuery(friend_ids=tuple(range(1, 11)),
                            sort_by="interest"),
                SearchQuery(friend_ids=tuple(range(1, 11)),
                            sort_by="hotness"),   # same friends, new sort
                SearchQuery(friend_ids=tuple(range(11, 21)),
                            sort_by="interest"),
            ]
            epoch_before = cluster._fanout_epoch
            results = [None] * len(queries)
            barrier = threading.Barrier(len(queries))

            def worker(i):
                barrier.wait()
                results[i] = qa.search(queries[i])

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(queries))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=GATE_TIMEOUT_S)
                assert not t.is_alive()
            assert cluster._fanout_epoch - epoch_before == len(queries)
            assert metrics.counter("queries.coalesced") == 0
            assert all(r is not None for r in results)
        finally:
            cluster.shutdown()

    def test_leader_exception_propagates_to_all_waiters(self):
        cluster, qa = _build_stack()
        try:
            query = SearchQuery(friend_ids=(1, 2, 3, 4), sort_by="interest")
            key = QueryAnsweringModule._coalesce_key(query)

            def exploding(queries):
                deadline = time.monotonic() + GATE_TIMEOUT_S
                while qa.single_flight.waiting(key) < HERD - 1:
                    if time.monotonic() > deadline:
                        raise AssertionError("herd never assembled")
                    time.sleep(0.001)
                raise QueryError("storage tier on fire")

            qa.search_personalized_batch = exploding
            results, errors = _hammer(qa, query, HERD)
            assert results == [None] * HERD
            assert all(isinstance(e, QueryError) for e in errors)
            # The failed flight must not wedge the table: a later call
            # starts fresh (and succeeds once the path is healthy).
            del qa.search_personalized_batch  # restore the real method
            assert qa.single_flight.in_flight() == 0
            recovered = qa.search(query)
            assert recovered.pois
        finally:
            cluster.shutdown()

    def test_rankings_deterministic_across_rounds(self):
        cluster, qa = _build_stack()
        try:
            query = SearchQuery(
                friend_ids=tuple(range(1, 31)), sort_by="interest"
            )
            key = QueryAnsweringModule._coalesce_key(query)
            _gate_until_herd(qa, key, 5)
            first, errors = _hammer(qa, query, 5)
            assert errors == [None] * 5
            second, errors = _hammer(qa, query, 5)
            assert errors == [None] * 5
            assert _fingerprint(first[0]) == _fingerprint(second[0])
        finally:
            cluster.shutdown()

    def test_coalescing_off_by_default_for_direct_construction(self):
        cluster, qa = _build_stack()
        try:
            bare = QueryAnsweringModule(qa.pois, qa.visits)
            assert bare.single_flight is None
        finally:
            cluster.shutdown()
