"""Tests for the query layer: predicates, planner, engine."""

import pytest

from repro.errors import QueryError, TableNotFoundError
from repro.geo import BoundingBox
from repro.sqlstore import (
    And,
    BBoxContains,
    Column,
    ColumnType,
    Eq,
    HashIndex,
    In,
    KeywordsAny,
    OrderedIndex,
    Query,
    Range,
    SpatialIndex,
    SqlEngine,
    TableSchema,
)


@pytest.fixture()
def engine():
    eng = SqlEngine()
    eng.create_table(
        TableSchema(
            name="pois",
            columns=[
                Column("poi_id", ColumnType.INTEGER),
                Column("name", ColumnType.TEXT),
                Column("lat", ColumnType.FLOAT),
                Column("lon", ColumnType.FLOAT),
                Column("keywords", ColumnType.TEXT_ARRAY, default=[]),
                Column("category", ColumnType.TEXT, default="misc"),
                Column("hotness", ColumnType.FLOAT, default=0.0),
            ],
            primary_key="poi_id",
        )
    )
    eng.create_index("pois", SpatialIndex("lat", "lon"))
    eng.create_index("pois", OrderedIndex("hotness"))
    eng.create_index("pois", HashIndex("category"))
    rows = [
        (1, "Taverna", 37.98, 23.73, ["food", "taverna"], "restaurant", 5.0),
        (2, "Cafe", 37.99, 23.74, ["coffee"], "cafe", 8.0),
        (3, "Museum", 40.64, 22.94, ["art"], "museum", 3.0),
        (4, "Beach Bar", 35.34, 25.14, ["drinks", "beach"], "bar", 9.0),
        (5, "Bistro", 37.97, 23.72, ["food"], "restaurant", 7.0),
    ]
    for poi_id, name, lat, lon, kw, cat, hot in rows:
        eng.insert(
            "pois",
            {
                "poi_id": poi_id,
                "name": name,
                "lat": lat,
                "lon": lon,
                "keywords": kw,
                "category": cat,
                "hotness": hot,
            },
        )
    return eng


ATHENS = BoundingBox(37.9, 23.6, 38.1, 23.8)


class TestPredicates:
    def test_eq_in_range(self):
        row = {"a": 5}
        assert Eq("a", 5).matches(row)
        assert not Eq("a", 6).matches(row)
        assert In("a", [4, 5]).matches(row)
        assert Range("a", low=5, high=6).matches(row)
        assert not Range("a", low=5, high=6, include_low=False).matches(row)
        assert Range("a", low=4, high=5, include_high=True).matches(row)

    def test_range_none_value(self):
        assert not Range("a", low=1).matches({"a": None})

    def test_keywords_any_case_insensitive(self):
        pred = KeywordsAny("kw", ["Food"])
        assert pred.matches({"kw": ["FOOD", "other"]})
        assert not pred.matches({"kw": ["drinks"]})
        assert not pred.matches({"kw": []})

    def test_and_flattens(self):
        pred = And(Eq("a", 1), And(Eq("b", 2), Eq("c", 3)))
        assert len(pred.predicates) == 3


class TestPlanner:
    def test_bbox_uses_spatial_index(self, engine):
        plan = engine.explain(
            Query(table="pois", where=BBoxContains("lat", "lon", ATHENS))
        )
        assert plan.access_path == "spatial index scan"

    def test_eq_uses_hash_index(self, engine):
        plan = engine.explain(Query(table="pois", where=Eq("category", "cafe")))
        assert plan.access_path == "index scan"
        assert plan.index_column == "category"

    def test_range_uses_ordered_index(self, engine):
        plan = engine.explain(Query(table="pois", where=Range("hotness", low=5.0)))
        assert plan.access_path == "index range scan"

    def test_unindexed_falls_back_to_seq_scan(self, engine):
        plan = engine.explain(Query(table="pois", where=Eq("name", "Cafe")))
        assert plan.access_path == "seq scan"

    def test_spatial_preferred_over_equality(self, engine):
        plan = engine.explain(
            Query(
                table="pois",
                where=And(
                    Eq("category", "restaurant"),
                    BBoxContains("lat", "lon", ATHENS),
                ),
            )
        )
        assert plan.access_path == "spatial index scan"
        assert len(plan.residual_predicates) == 1


class TestSelect:
    def test_bbox_query(self, engine):
        rows = engine.select(
            Query(table="pois", where=BBoxContains("lat", "lon", ATHENS))
        )
        assert {r["poi_id"] for r in rows} == {1, 2, 5}

    def test_combined_bbox_keywords(self, engine):
        rows = engine.select(
            Query(
                table="pois",
                where=And(
                    BBoxContains("lat", "lon", ATHENS),
                    KeywordsAny("keywords", ["food"]),
                ),
            )
        )
        assert {r["poi_id"] for r in rows} == {1, 5}

    def test_order_by_desc_with_limit(self, engine):
        rows = engine.select(
            Query(table="pois", order_by=("hotness", True), limit=2)
        )
        assert [r["poi_id"] for r in rows] == [4, 2]

    def test_order_by_asc(self, engine):
        rows = engine.select(Query(table="pois", order_by=("hotness", False)))
        assert [r["poi_id"] for r in rows] == [3, 1, 5, 2, 4]

    def test_projection(self, engine):
        rows = engine.select(
            Query(table="pois", where=Eq("category", "cafe"), columns=["name"])
        )
        assert rows == [{"name": "Cafe"}]

    def test_range_select(self, engine):
        rows = engine.select(
            Query(table="pois", where=Range("hotness", low=7.0, high=9.0))
        )
        assert {r["poi_id"] for r in rows} == {2, 5}

    def test_in_select(self, engine):
        rows = engine.select(
            Query(table="pois", where=In("category", ["cafe", "bar"]))
        )
        assert {r["poi_id"] for r in rows} == {2, 4}

    def test_unknown_table(self, engine):
        with pytest.raises(TableNotFoundError):
            engine.select(Query(table="nope"))

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryError):
            Query(table="pois", limit=-1)

    def test_stats_track_access_paths(self, engine):
        before = engine.stats["index_scans"]
        engine.select(Query(table="pois", where=Eq("category", "cafe")))
        assert engine.stats["index_scans"] == before + 1
        before_seq = engine.stats["seq_scans"]
        engine.select(Query(table="pois", where=Eq("name", "Cafe")))
        assert engine.stats["seq_scans"] == before_seq + 1

    def test_update_visible_in_select(self, engine):
        table = engine.table("pois")
        rid = next(iter(table.rids_by_pk(3)))
        engine.update("pois", rid, {"hotness": 99.0})
        rows = engine.select(Query(table="pois", order_by=("hotness", True), limit=1))
        assert rows[0]["poi_id"] == 3
