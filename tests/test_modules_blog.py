"""Tests for the blog module: generation, editing, publishing."""

import pytest

from repro.config import PlatformConfig
from repro.core import MoDisSENSE
from repro.core.repositories.poi import POI
from repro.datagen.gps import GPSPoint
from repro.errors import PluginError, ValidationError
from repro.social import FriendInfo


@pytest.fixture()
def platform_with_day():
    """A platform with one user whose day visits two POIs."""
    p = MoDisSENSE(PlatformConfig.small())
    fb = p.plugins["facebook"]
    fb.add_profile(FriendInfo("fb_1", "Blogger", "pic"))
    p.register_user("facebook", "fb_1", "pw", now=0.0)

    p.poi_repository.add(
        POI(poi_id=1, name="Morning Cafe", lat=37.9800, lon=23.7300,
            keywords=("coffee",), category="cafe")
    )
    p.poi_repository.add(
        POI(poi_id=2, name="Lunch Taverna", lat=37.9900, lon=23.7400,
            keywords=("food",), category="restaurant")
    )
    day0 = 1_433_030_400  # 2015-05-31 00:00 UTC
    for i in range(8):
        p.push_gps([GPSPoint(1, 37.98001, 23.73001, day0 + 28_800 + i * 250)])
    for i in range(8):
        p.push_gps([GPSPoint(1, 37.99001, 23.74001, day0 + 43_200 + i * 250)])
    yield p, day0
    p.shutdown()


class TestBlogGeneration:
    def test_daily_blog_from_trajectory(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        assert blog.day == "2015-05-31"
        assert [v.poi_name for v in blog.visits] == [
            "Morning Cafe", "Lunch Taverna",
        ]
        assert blog.visits[0].arrival < blog.visits[1].arrival

    def test_blog_persisted_for_user(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        stored = p.blogs_repository.for_user(1)
        assert [b.blog_id for b in stored] == [blog.blog_id]


class TestBlogEditing:
    def test_reorder(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        edited = p.blog.reorder_visits(blog.blog_id, [1, 0])
        assert [v.poi_name for v in edited.visits] == [
            "Lunch Taverna", "Morning Cafe",
        ]

    def test_reorder_requires_permutation(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        with pytest.raises(ValidationError):
            p.blog.reorder_visits(blog.blog_id, [0, 0])

    def test_edit_times(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        edited = p.blog.edit_visit_times(
            blog.blog_id, 0, arrival=day0 + 100, departure=day0 + 200
        )
        assert edited.visits[0].arrival == day0 + 100

    def test_edit_times_validates_order(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        with pytest.raises(ValidationError):
            p.blog.edit_visit_times(blog.blog_id, 0, arrival=500, departure=100)

    def test_annotate(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        edited = p.blog.annotate_visit(blog.blog_id, 1, "best moussaka ever")
        assert edited.visits[1].note == "best moussaka ever"

    def test_bad_index_rejected(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        with pytest.raises(ValidationError):
            p.blog.annotate_visit(blog.blog_id, 9, "nope")

    def test_unknown_blog_rejected(self, platform_with_day):
        p, _day0 = platform_with_day
        with pytest.raises(ValidationError):
            p.blog.reorder_visits(12345, [])


class TestBlogPublishing:
    def test_publish_posts_to_network(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        published = p.blog.publish(blog.blog_id, "facebook", now=100.0)
        assert published.published_to == ("facebook",)
        posts = p.plugins["facebook"].published
        assert len(posts) == 1
        assert "Morning Cafe" in posts[0].text
        assert "Lunch Taverna" in posts[0].text

    def test_publish_requires_linked_network(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        from repro.errors import AuthenticationError

        with pytest.raises(AuthenticationError):
            p.blog.publish(blog.blog_id, "twitter", now=100.0)

    def test_publish_unknown_network(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        with pytest.raises(PluginError):
            p.blog.publish(blog.blog_id, "myspace", now=100.0)

    def test_render_text_includes_notes(self, platform_with_day):
        p, day0 = platform_with_day
        blog = p.generate_blog(1, day0, day0 + 86_400)
        p.blog.annotate_visit(blog.blog_id, 0, "great espresso")
        text = p.blog.render_text(p.blogs_repository.get(blog.blog_id))
        assert "great espresso" in text
        assert text.startswith("My day on 2015-05-31")
