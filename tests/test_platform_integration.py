"""End-to-end integration tests: the full platform lifecycle."""

import pytest

from repro import MoDisSENSE, SearchQuery, TrendingQuery
from repro.config import PlatformConfig
from repro.datagen import ReviewGenerator, generate_pois, generate_traces
from repro.social import CheckIn, FriendInfo


@pytest.fixture(scope="module")
def loaded_platform():
    """A platform with POIs, a trained classifier, two registered users
    with disjoint taste profiles, and collected social data.

    Mirrors the demo scenario of paper Section 4: one user's friends
    love fast food, the other's prefer upscale restaurants.
    """
    p = MoDisSENSE(PlatformConfig.small())
    pois = generate_pois(count=400, seed=20)
    p.load_pois(pois)
    corpus = ReviewGenerator(seed=21, capacity=4000).labeled_texts(1200)
    p.text_processing.train(corpus)

    fb = p.plugins["facebook"]
    for i in range(1, 31):
        fb.add_profile(FriendInfo("fb_%d" % i, "User %d" % i, "pic"))
    # User 1's friends: 3..10; user 2's friends: 11..18.
    for i in range(3, 11):
        fb.add_friendship("fb_1", "fb_%d" % i)
    for i in range(11, 19):
        fb.add_friendship("fb_2", "fb_%d" % i)

    fastfood = [q for q in pois if q.category == "fastfood"][:6]
    restaurants = [q for q in pois if q.category == "restaurant"][:6]
    ts = 1000
    for i in range(3, 11):  # user 1's circle loves fast food
        for poi in fastfood[:4]:
            fb.add_checkin(
                CheckIn("fb_%d" % i, poi.poi_id, poi.lat, poi.lon, ts,
                        "excellent delicious wonderful")
            )
            ts += 1
    for i in range(11, 19):  # user 2's circle loves restaurants
        for poi in restaurants[:4]:
            fb.add_checkin(
                CheckIn("fb_%d" % i, poi.poi_id, poi.lat, poi.lon, ts,
                        "superb lovely impeccable")
            )
            ts += 1
        # ... and hates fast food.
        fb.add_checkin(
            CheckIn("fb_%d" % i, fastfood[0].poi_id, fastfood[0].lat,
                    fastfood[0].lon, ts, "terrible greasy awful")
        )
        ts += 1

    p.register_user("facebook", "fb_1", "pw", now=10_000.0)
    p.register_user("facebook", "fb_2", "pw", now=10_000.0)
    p.collect(now=10_000)
    p.run_hotin(0, 20_000)
    yield p, pois, fastfood, restaurants
    p.shutdown()


class TestPersonalizationScenario:
    def test_same_query_different_users_different_results(self, loaded_platform):
        """Paper Section 4 demo: the same keyword search returns fast
        food for one user and upscale restaurants for the other."""
        p, _pois, fastfood, restaurants = loaded_platform
        user1_friends = tuple(range(3, 11))
        user2_friends = tuple(range(11, 19))
        res1 = p.search(SearchQuery(friend_ids=user1_friends,
                                    sort_by="interest", limit=4))
        res2 = p.search(SearchQuery(friend_ids=user2_friends,
                                    sort_by="interest", limit=4))
        ids1 = {r.poi_id for r in res1.pois}
        ids2 = {r.poi_id for r in res2.pois}
        assert ids1 <= {q.poi_id for q in fastfood}
        assert ids2 <= {q.poi_id for q in restaurants}
        assert ids1.isdisjoint(ids2)

    def test_negative_opinions_sink_ranking(self, loaded_platform):
        p, _pois, fastfood, _restaurants = loaded_platform
        user2_friends = tuple(range(11, 19))
        res = p.search(SearchQuery(friend_ids=user2_friends,
                                   sort_by="interest", limit=10))
        scores = {r.poi_id: r.score for r in res.pois}
        disliked = scores.get(fastfood[0].poi_id)
        if disliked is not None:
            assert disliked < min(
                s for pid, s in scores.items() if pid != fastfood[0].poi_id
            )

    def test_global_hotness_reflects_all_visits(self, loaded_platform):
        p, _pois, fastfood, _restaurants = loaded_platform
        res = p.search(SearchQuery(sort_by="hotness", limit=1))
        # fastfood[0] got visits from both circles: 8 + 8 = 16 visits.
        assert res.pois[0].poi_id == fastfood[0].poi_id

    def test_trending_in_window(self, loaded_platform):
        p, _pois, _fastfood, _restaurants = loaded_platform
        res = p.trending_events(
            TrendingQuery(now=20_000, window_s=20_000,
                          friend_ids=tuple(range(3, 19)), limit=3)
        )
        assert len(res.pois) == 3
        assert res.pois[0].score >= res.pois[1].score >= res.pois[2].score


class TestEventDetectionIntegration:
    def test_detected_events_become_searchable(self, loaded_platform):
        p, pois, _f, _r = loaded_platform
        before = p.poi_repository.count()
        scenario = generate_traces(
            user_ids=[1, 2], known_pois=pois, num_hotspots=2,
            points_per_hotspot=80, near_poi_points=50, background_points=60,
            seed=22,
        )
        p.push_gps(scenario.points)
        report = p.detect_events(since=0)
        assert report.clusters_found == 2
        assert p.poi_repository.count() == before + 2
        # Auto-detected POIs answer keyword search.
        res = p.search(SearchQuery(keywords=("event",), sort_by="hotness"))
        assert len(res.pois) >= 1


class TestDescribe:
    def test_describe_summarizes_deployment(self, loaded_platform):
        p, _pois, _f, _r = loaded_platform
        info = p.describe()
        assert info["pois"] >= 400
        assert info["visits"] > 0
        assert set(info["networks"]) == {"facebook", "twitter", "foursquare"}
        assert info["hbase"]["cluster"]["nodes"] == 4
