"""Backpressure semantics of the streaming ingest tier.

Deterministic setup: crash a partition's applier (via the injection
hook) so its bounded queue stops draining, then drive producers into
the full queue.  Both policies must fail *typed* — the visit is never
enqueued, nothing is half-applied — and every visit that WAS accepted
must land once pressure releases.
"""

import threading
import time

import pytest

from repro.config import ClusterConfig, IngestConfig, PlatformConfig
from repro.core.ingest import _PartitionQueue
from repro.core.platform import MoDisSENSE
from repro.core.repositories.poi import POI
from repro.core.repositories.visits import VisitStruct
from repro.errors import BackpressureError


def visit(i, poi_id=1):
    return VisitStruct(user_id=100 + i, poi_id=poi_id, timestamp=1000 + i,
                       grade=0.5)


def make_platform(capacity, policy, timeout_s=0.2):
    config = PlatformConfig(
        cluster=ClusterConfig(num_nodes=2, regions_per_table=4),
        ingest=IngestConfig(
            enabled=True,
            num_partitions=1,
            queue_capacity=capacity,
            max_batch=8,
            backpressure=policy,
            block_timeout_s=timeout_s,
        ),
    )
    platform = MoDisSENSE(config)
    platform.poi_repository.add(
        POI(poi_id=1, name="p", lat=38.0, lon=23.7, keywords=("k",),
            category="test")
    )
    return platform


def stall_applier(platform):
    """Deterministically stop partition 0 from draining: arm the crash
    hook and feed it one sacrificial visit."""
    tier = platform.ingest
    tier.inject_crash(0)
    tier.submit(visit(0))
    deadline = time.monotonic() + 10.0
    while tier.crashed_partitions() != [0]:
        assert time.monotonic() < deadline
        time.sleep(0.005)
    return tier


class TestPartitionQueueUnit:
    def test_shed_raises_immediately_when_full(self):
        q = _PartitionQueue(capacity=2)
        q.offer("a", block=False, timeout_s=0.0)
        q.offer("b", block=False, timeout_s=0.0)
        start = time.monotonic()
        with pytest.raises(BackpressureError):
            q.offer("c", block=False, timeout_s=0.0)
        assert time.monotonic() - start < 0.1  # no hidden wait
        assert q.depth() == 2  # the shed item was never enqueued

    def test_block_times_out_typed(self):
        q = _PartitionQueue(capacity=1)
        q.offer("a", block=True, timeout_s=1.0)
        start = time.monotonic()
        with pytest.raises(BackpressureError):
            q.offer("b", block=True, timeout_s=0.15)
        elapsed = time.monotonic() - start
        assert elapsed >= 0.14  # honored the wait budget
        assert q.depth() == 1

    def test_blocked_producer_resumes_when_consumer_drains(self):
        q = _PartitionQueue(capacity=1)
        q.offer("a", block=True, timeout_s=1.0)

        def consume_later():
            time.sleep(0.05)
            q.take_batch(1, wait_s=0.0)

        t = threading.Thread(target=consume_later)
        t.start()
        waited = q.offer("b", block=True, timeout_s=5.0)
        t.join()
        assert waited  # the producer did block before succeeding
        assert q.take_batch(8, wait_s=0.0) == ["b"]

    def test_take_batch_caps_at_max(self):
        q = _PartitionQueue(capacity=16)
        for i in range(10):
            q.offer(i, block=False, timeout_s=0.0)
        assert q.take_batch(4, wait_s=0.0) == [0, 1, 2, 3]
        assert q.depth() == 6


class TestShedPolicy:
    def test_shed_is_typed_and_counted(self):
        with make_platform(capacity=2, policy="shed") as platform:
            tier = stall_applier(platform)
            accepted = 0
            for i in range(1, 3):  # fills the dead partition's queue
                tier.submit(visit(i))
                accepted += 1
            with pytest.raises(BackpressureError):
                tier.submit(visit(99))
            assert tier.shed == 1
            assert tier.backpressure_events == 1
            assert platform.metrics.counter(
                "ingest.backpressure_events", labels={"policy": "shed"}
            ) == 1
            assert platform.metrics.counter("ingest.shed") == 1

            # Pressure releases: every ACCEPTED visit lands, the shed
            # one does not (its rejection was the contract).
            tier.recover(0)
            assert tier.drain()
            snap = platform.incremental_hotin.snapshot()
            # sacrificial + 2 accepted, all on poi 1
            assert snap[1][0] == 1 + accepted

    def test_shed_failure_never_half_applies(self):
        with make_platform(capacity=1, policy="shed") as platform:
            tier = stall_applier(platform)
            tier.submit(visit(1))
            before = platform.visits_repository.count()
            with pytest.raises(BackpressureError):
                tier.submit(visit(2))
            assert platform.visits_repository.count() == before
            assert tier.submitted == 2  # sacrificial + one accepted
            tier.recover(0)
            assert tier.drain()
            assert platform.visits_repository.count() == 2


class TestBlockPolicy:
    def test_block_times_out_after_budget(self):
        with make_platform(
            capacity=1, policy="block", timeout_s=0.15
        ) as platform:
            tier = stall_applier(platform)
            tier.submit(visit(1))
            start = time.monotonic()
            with pytest.raises(BackpressureError):
                tier.submit(visit(2))
            assert time.monotonic() - start >= 0.14
            assert tier.backpressure_events == 1
            assert platform.metrics.counter(
                "ingest.backpressure_events", labels={"policy": "block"}
            ) == 1
            tier.recover(0)
            assert tier.drain()

    def test_blocked_producer_lands_after_recovery(self):
        with make_platform(
            capacity=1, policy="block", timeout_s=10.0
        ) as platform:
            tier = stall_applier(platform)
            tier.submit(visit(1))  # queue now full

            outcome = {}

            def producer():
                outcome["partition"] = tier.submit(visit(2))

            t = threading.Thread(target=producer)
            t.start()
            time.sleep(0.05)
            assert t.is_alive()  # genuinely blocked on the full queue
            tier.recover(0)  # applier resumes, space frees, producer lands
            t.join(timeout=10.0)
            assert not t.is_alive()
            assert outcome["partition"] == 0
            assert tier.drain()
            # No delta lost: sacrificial + both producers' visits.
            assert platform.incremental_hotin.snapshot()[1][0] == 3
            # The wait itself was observable as a backpressure event.
            assert tier.backpressure_events >= 1


class TestAdminSurface:
    def test_admin_ingest_reports_and_forces_actions(self):
        from repro.core.api.rest import RestApi

        with make_platform(capacity=64, policy="block") as platform:
            api = RestApi(platform)
            for i in range(1, 9):
                platform.ingest_visit(visit(i))
            assert platform.ingest.drain()

            resp = api.handle("admin_ingest", {})
            assert resp["status"] == "ok"
            stats = resp["data"]["stats"]
            assert resp["data"]["enabled"] is True
            assert stats["counters"]["submitted"] == 8
            assert stats["counters"]["applied"] == 8
            assert len(stats["partitions"]) == 1

            resp = api.handle(
                "admin_ingest",
                {"rebalance": True, "reconcile": True,
                 "since": 0, "until": 5000},
            )
            assert resp["status"] == "ok"
            assert resp["data"]["reconcile"]["in_sync"] is True

            resp = api.handle("admin_ingest", {"reconcile": True})
            assert resp["status"] == "error"
            assert resp["error"]["code"] == "bad_request"

    def test_admin_ingest_when_disabled(self):
        from repro.core.api.rest import RestApi

        config = PlatformConfig(
            cluster=ClusterConfig(num_nodes=2, regions_per_table=4)
        )
        with MoDisSENSE(config) as platform:
            api = RestApi(platform)
            resp = api.handle("admin_ingest", {})
            assert resp["status"] == "ok"
            assert resp["data"] == {"enabled": False}
