"""Tests for DBSCAN, grid partitioning and MR-DBSCAN."""

import random

import pytest

from repro.clustering import (
    GridPartitioner,
    NOISE,
    dbscan,
    mr_dbscan,
)
from repro.clustering.dbscan import cluster_centroid
from repro.errors import ValidationError
from repro.geo import GeoPoint


def gaussian_blob(center, n, sigma_deg, rng):
    return [
        GeoPoint(center[0] + rng.gauss(0, sigma_deg), center[1] + rng.gauss(0, sigma_deg))
        for _ in range(n)
    ]


@pytest.fixture()
def three_blobs():
    rng = random.Random(21)
    centers = [(37.98, 23.73), (38.03, 23.81), (37.91, 23.64)]
    points = []
    for c in centers:
        points.extend(gaussian_blob(c, 70, 0.00015, rng))
    noise = [
        GeoPoint(37.5 + rng.random() * 0.8, 23.2 + rng.random() * 0.9)
        for _ in range(40)
    ]
    return points + noise, centers


class TestDBSCAN:
    def test_finds_three_clusters(self, three_blobs):
        points, _centers = three_blobs
        result = dbscan(points, eps_m=60, min_points=8)
        assert result.num_clusters == 3
        # The 210 blob points should nearly all be clustered.
        clustered = sum(1 for l in result.labels[:210] if l != NOISE)
        assert clustered >= 200

    def test_sparse_points_are_noise(self, three_blobs):
        points, _ = three_blobs
        result = dbscan(points, eps_m=60, min_points=8)
        noise_tail = result.labels[210:]
        assert sum(1 for l in noise_tail if l == NOISE) >= 35

    def test_empty_input(self):
        result = dbscan([], eps_m=10, min_points=3)
        assert result.labels == []
        assert result.num_clusters == 0

    def test_single_dense_cluster(self):
        rng = random.Random(1)
        points = gaussian_blob((40.0, 22.0), 50, 0.0001, rng)
        result = dbscan(points, eps_m=80, min_points=5)
        assert result.num_clusters == 1
        assert all(l == 0 for l in result.labels)

    def test_all_noise_when_min_points_too_high(self):
        points = [GeoPoint(37.0 + i * 0.1, 23.0) for i in range(10)]
        result = dbscan(points, eps_m=10, min_points=3)
        assert result.num_clusters == 0
        assert all(l == NOISE for l in result.labels)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            dbscan([], eps_m=0, min_points=1)
        with pytest.raises(ValidationError):
            dbscan([], eps_m=1, min_points=0)

    def test_cluster_members_excludes_noise(self, three_blobs):
        points, _ = three_blobs
        result = dbscan(points, eps_m=60, min_points=8)
        members = result.cluster_members()
        assert set(members) == set(range(result.num_clusters))
        all_indexes = [i for idxs in members.values() for i in idxs]
        assert len(all_indexes) == len(set(all_indexes))

    def test_centroid(self):
        points = [GeoPoint(1.0, 1.0), GeoPoint(3.0, 3.0)]
        c = cluster_centroid(points, [0, 1])
        assert c == GeoPoint(2.0, 2.0)
        with pytest.raises(ValidationError):
            cluster_centroid(points, [])


class TestGridPartitioner:
    def test_every_point_owned_exactly_once(self, three_blobs):
        points, _ = three_blobs
        cells = GridPartitioner(eps_m=60, target_cells=16).partition(points)
        owned = [i for cell in cells for i in cell.inner]
        assert sorted(owned) == list(range(len(points)))

    def test_halo_contains_cross_border_neighbors(self):
        # Two points straddling a cell border within eps must share a cell.
        rng = random.Random(5)
        points = gaussian_blob((38.0, 23.0), 200, 0.01, rng)
        eps = 100.0
        cells = GridPartitioner(eps_m=eps, target_cells=16).partition(points)
        # For every pair within eps, some cell contains both (inner+halo).
        close_pairs = []
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                if points[i].distance_m(points[j]) <= eps:
                    close_pairs.append((i, j))
        cell_sets = [set(c.all_indexes) for c in cells]
        for i, j in close_pairs:
            assert any(i in s and j in s for s in cell_sets), (i, j)

    def test_empty_input(self):
        assert GridPartitioner(eps_m=10).partition([]) == []

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            GridPartitioner(eps_m=0)
        with pytest.raises(ValidationError):
            GridPartitioner(eps_m=1, target_cells=0)


class TestMRDBSCAN:
    def _core_partition(self, points, result, eps_m, min_points):
        """Map each *core* point to its cluster, for structure comparison."""
        from repro.clustering.dbscan import _NeighborGrid

        grid = _NeighborGrid(points, eps_m)
        core = {}
        for i in range(len(points)):
            if len(grid.neighbors(i)) >= min_points:
                core[i] = result.labels[i]
        return core

    def test_matches_sequential_on_blobs(self, three_blobs):
        points, _ = three_blobs
        seq = dbscan(points, eps_m=60, min_points=8)
        dist = mr_dbscan(points, eps_m=60, min_points=8, target_partitions=9)
        assert dist.num_clusters == seq.num_clusters
        # Core points must induce the same partition (up to relabeling).
        seq_core = self._core_partition(points, seq, 60, 8)
        dist_core = self._core_partition(points, dist, 60, 8)
        assert set(seq_core) == set(dist_core)
        mapping = {}
        for idx, seq_label in seq_core.items():
            dist_label = dist_core[idx]
            assert mapping.setdefault(seq_label, dist_label) == dist_label

    def test_matches_sequential_on_random_fields(self):
        rng = random.Random(77)
        for trial in range(3):
            points = [
                GeoPoint(38.0 + rng.random() * 0.02, 23.0 + rng.random() * 0.02)
                for _ in range(250)
            ]
            seq = dbscan(points, eps_m=120, min_points=5)
            dist = mr_dbscan(points, eps_m=120, min_points=5, target_partitions=8)
            assert dist.num_clusters == seq.num_clusters
            seq_core = self._core_partition(points, seq, 120, 5)
            dist_core = self._core_partition(points, dist, 120, 5)
            mapping = {}
            for idx in seq_core:
                assert mapping.setdefault(
                    seq_core[idx], dist_core[idx]
                ) == dist_core[idx]

    def test_empty_input(self):
        result = mr_dbscan([], eps_m=10, min_points=3)
        assert result.num_clusters == 0

    def test_single_partition_degenerates_to_dbscan(self, three_blobs):
        points, _ = three_blobs
        seq = dbscan(points, eps_m=60, min_points=8)
        dist = mr_dbscan(points, eps_m=60, min_points=8, target_partitions=1)
        assert dist.num_clusters == seq.num_clusters

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            mr_dbscan([], eps_m=-1, min_points=1)
        with pytest.raises(ValidationError):
            mr_dbscan([], eps_m=1, min_points=0)
