"""Property-based tests (hypothesis) on core invariants."""

import bisect

from hypothesis import given, settings, strategies as st

from repro.geo import BoundingBox, GeoPoint, RTree, geohash_decode, geohash_encode
from repro.hbase import (
    Cell,
    MemStore,
    Region,
    decode_int,
    decode_int_desc,
    encode_int,
    encode_int_desc,
    next_prefix,
)
from repro.text import porter_stem
from repro.text.naive_bayes import NaiveBayesClassifier

lat_strategy = st.floats(min_value=-90, max_value=90, allow_nan=False)
lon_strategy = st.floats(min_value=-180, max_value=180, allow_nan=False)
uint_strategy = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestIntEncodingProperties:
    @given(uint_strategy)
    def test_roundtrip(self, value):
        assert decode_int(encode_int(value)) == value
        assert decode_int_desc(encode_int_desc(value)) == value

    @given(uint_strategy, uint_strategy)
    def test_order_preserving(self, a, b):
        assert (a < b) == (encode_int(a) < encode_int(b))
        assert (a < b) == (encode_int_desc(a) > encode_int_desc(b))

    @given(st.binary(min_size=1, max_size=12))
    def test_next_prefix_bounds_prefix_scans(self, prefix):
        stop = next_prefix(prefix)
        if stop:
            assert prefix < stop
            # Everything with the prefix sorts before stop.
            assert prefix + b"\xff\xff\xff" < stop


class TestGeohashProperties:
    @given(lat_strategy, lon_strategy, st.integers(min_value=1, max_value=12))
    def test_decode_contains_encoded_point(self, lat, lon, precision):
        code = geohash_encode(lat, lon, precision)
        mid_lat, mid_lon, lat_err, lon_err = geohash_decode(code)
        assert abs(mid_lat - lat) <= lat_err + 1e-12
        assert abs(mid_lon - lon) <= lon_err + 1e-12

    @given(lat_strategy, lon_strategy)
    def test_nearby_points_share_prefix(self, lat, lon):
        # A point within the cell of a precision-5 hash shares its prefix
        # when re-encoded at equal or lower precision... verified via
        # decode: the cell's center re-encodes to the same hash.
        code = geohash_encode(lat, lon, 5)
        mid_lat, mid_lon, _e1, _e2 = geohash_decode(code)
        assert geohash_encode(mid_lat, mid_lon, 5) == code


class TestRTreeProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-80, max_value=80, allow_nan=False),
                st.floats(min_value=-170, max_value=170, allow_nan=False),
            ),
            min_size=1,
            max_size=120,
        ),
        st.tuples(
            st.floats(min_value=-80, max_value=80, allow_nan=False),
            st.floats(min_value=-80, max_value=80, allow_nan=False),
            st.floats(min_value=-170, max_value=170, allow_nan=False),
            st.floats(min_value=-170, max_value=170, allow_nan=False),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_search_matches_linear_scan(self, coords, query_box):
        lat1, lat2 = sorted(query_box[:2])
        lon1, lon2 = sorted(query_box[2:])
        query = BoundingBox(lat1, lon1, lat2, lon2)
        tree = RTree(max_entries=6)
        points = []
        for i, (lat, lon) in enumerate(coords):
            p = GeoPoint(lat, lon)
            points.append((p, i))
            tree.insert_point(p, i)
        expected = {i for p, i in points if query.contains(p)}
        assert set(tree.search(query)) == expected


class TestMemStoreProperties:
    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=6),
                      st.integers(min_value=0, max_value=100)),
            min_size=0,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_scan_always_sorted(self, entries):
        store = MemStore()
        for row, ts in entries:
            store.put(
                Cell(row=row, family="f", qualifier=b"q", timestamp=ts)
            )
        keys = [c.sort_key() for c in store.scan()]
        assert keys == sorted(keys)

    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=4),
                      st.integers(min_value=0, max_value=20),
                      st.binary(max_size=4)),
            min_size=1,
            max_size=150,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_region_get_returns_newest_version(self, puts):
        region = Region(families=["f"])
        newest = {}
        for row, ts, value in puts:
            region.put(
                Cell(row=row, family="f", qualifier=b"q", timestamp=ts,
                     value=value)
            )
            prev = newest.get(row)
            if prev is None or ts >= prev[0]:
                newest[row] = (ts, value)
        for row, (_ts, value) in newest.items():
            assert region.get(row, "f", b"q") == value

    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=4),
                      st.integers(min_value=0, max_value=20),
                      st.binary(max_size=4)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_flush_and_compact_preserve_reads(self, puts):
        plain = Region(families=["f"])
        lsm = Region(families=["f"])
        for i, (row, ts, value) in enumerate(puts):
            cell = Cell(row=row, family="f", qualifier=b"q", timestamp=ts,
                        value=value)
            plain.put(cell)
            lsm.put(cell)
            if i % 7 == 3:
                lsm.flush()
        lsm.compact()
        rows = {row for row, _ts, _v in puts}
        for row in rows:
            assert plain.get(row, "f", b"q") == lsm.get(row, "f", b"q")


class TestStemmerProperties:
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                   max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_stemming_never_grows_much_or_crashes(self, word):
        stem = porter_stem(word)
        assert stem
        assert len(stem) <= len(word) + 1  # step1b may add an 'e'


class TestNaiveBayesProperties:
    @given(
        st.lists(
            st.tuples(
                st.dictionaries(
                    st.sampled_from(["a", "b", "c", "d", "e"]),
                    st.integers(min_value=1, max_value=5),
                    min_size=1,
                    max_size=4,
                ),
                st.integers(min_value=0, max_value=1),
            ),
            min_size=2,
            max_size=60,
        ).filter(lambda ex: {l for _c, l in ex} == {0, 1})
    )
    @settings(max_examples=60, deadline=None)
    def test_proba_is_valid_and_matches_prediction(self, examples):
        nb = NaiveBayesClassifier()
        nb.train(examples)
        for counts, _label in examples:
            p = nb.predict_proba(counts)
            assert 0.0 <= p <= 1.0
            assert (p >= 0.5) == (nb.predict(counts) == 1)
