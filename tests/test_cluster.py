"""Tests for the cluster simulation: nodes, scheduling, cost model."""

import pytest

from repro.cluster import ClusterSimulation, CostModel, Node, ParallelExecutor, Task
from repro.config import ClusterConfig
from repro.errors import ConfigError, CoprocessorError


class TestNode:
    def test_requires_a_core(self):
        with pytest.raises(ConfigError):
            Node(node_id=0, cores=0)

    def test_schedule_on_idle_core(self):
        node = Node(node_id=0, cores=2)
        assert node.schedule(ready_at=0.0, duration=1.0) == 1.0
        # Second task goes to the other idle core.
        assert node.schedule(ready_at=0.0, duration=1.0) == 1.0
        # Third task queues behind one of them.
        assert node.schedule(ready_at=0.0, duration=1.0) == 2.0

    def test_ready_time_respected(self):
        node = Node(node_id=0, cores=1)
        assert node.schedule(ready_at=5.0, duration=1.0) == 6.0

    def test_reset(self):
        node = Node(node_id=0, cores=2)
        node.schedule(0.0, 10.0)
        node.reset()
        assert node.core_available_at == [0.0, 0.0]


class TestCostModel:
    def test_from_config(self):
        config = ClusterConfig(rpc_latency_ms=2.0, cost_per_record_us=10.0)
        cm = CostModel.from_config(config)
        assert cm.rpc_latency_s == pytest.approx(0.002)
        assert cm.cost_per_record_s == pytest.approx(1e-5)

    def test_coprocessor_cost_linear_in_records(self):
        cm = CostModel()
        c0 = cm.coprocessor_cost_s(0)
        c1000 = cm.coprocessor_cost_s(1000)
        c2000 = cm.coprocessor_cost_s(2000)
        assert c2000 - c1000 == pytest.approx(c1000 - c0)


class TestClusterSimulation:
    def _sim(self, nodes, regions):
        sim = ClusterSimulation(ClusterConfig(num_nodes=nodes))
        sim.place_regions(list(range(regions)))
        return sim

    def test_round_robin_placement(self):
        sim = self._sim(nodes=4, regions=8)
        placement = sim.region_placement
        # Each node gets exactly two regions.
        counts = {}
        for node in placement.values():
            counts[node] = counts.get(node, 0) + 1
        assert counts == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_unplaced_region_raises(self):
        sim = ClusterSimulation(ClusterConfig(num_nodes=2))
        with pytest.raises(ConfigError):
            sim.node_for_region(99)

    def test_latency_linear_in_records(self):
        sim = self._sim(nodes=4, regions=8)
        def query(records):
            tasks = [Task(region_id=r, records_scanned=records) for r in range(8)]
            return sim.run_query(tasks).latency_s
        t1 = query(1000)
        t2 = query(2000)
        t4 = query(4000)
        assert t2 > t1
        # Doubling records roughly doubles the compute part.
        assert (t4 - t2) == pytest.approx(2 * (t2 - t1), rel=0.2)

    def test_more_nodes_lower_latency(self):
        def latency(nodes):
            sim = self._sim(nodes=nodes, regions=32)
            tasks = [Task(region_id=r, records_scanned=5000) for r in range(32)]
            return sim.run_query(tasks).latency_s
        l4, l8, l16 = latency(4), latency(8), latency(16)
        assert l4 > l8 > l16

    def test_concurrent_queries_slower_than_single(self):
        sim = self._sim(nodes=4, regions=8)
        tasks = [Task(region_id=r, records_scanned=5000) for r in range(8)]
        single = sim.run_query(tasks).latency_s
        many = sim.run_queries([list(tasks) for _ in range(10)])
        mean = sum(t.latency_s for t in many) / len(many)
        assert mean > single

    def test_concurrency_growth_flatter_on_bigger_cluster(self):
        def mean_latency(nodes, concurrency):
            sim = self._sim(nodes=nodes, regions=32)
            tasks = [Task(region_id=r, records_scanned=2000) for r in range(32)]
            timelines = sim.run_queries([list(tasks)] * concurrency)
            return sum(t.latency_s for t in timelines) / concurrency
        growth_small = mean_latency(4, 20) - mean_latency(4, 10)
        growth_big = mean_latency(16, 20) - mean_latency(16, 10)
        assert growth_big < growth_small

    def test_timeline_records_accounting(self):
        sim = self._sim(nodes=2, regions=4)
        tasks = [Task(region_id=r, records_scanned=10) for r in range(4)]
        timeline = sim.run_query(tasks)
        assert timeline.records_scanned == 40
        assert timeline.tasks == 4

    def test_mismatched_submit_at_rejected(self):
        sim = self._sim(nodes=2, regions=2)
        with pytest.raises(ConfigError):
            sim.run_queries([[Task(0, 1)]], submit_at=[0.0, 1.0])


class TestParallelExecutor:
    def test_map_ordered_preserves_order(self):
        with ParallelExecutor(max_workers=4) as ex:
            out = ex.map_ordered(lambda x: x * 2, list(range(20)))
        assert out == [x * 2 for x in range(20)]

    def test_empty_input(self):
        with ParallelExecutor() as ex:
            assert ex.map_ordered(lambda x: x, []) == []

    def test_worker_exception_wrapped(self):
        def boom(x):
            raise ValueError("bad %d" % x)
        with ParallelExecutor(max_workers=2) as ex:
            with pytest.raises(CoprocessorError):
                ex.map_ordered(boom, [1, 2, 3])

    def test_single_worker_path(self):
        with ParallelExecutor(max_workers=1) as ex:
            assert ex.map_ordered(lambda x: x + 1, [1, 2]) == [2, 3]
