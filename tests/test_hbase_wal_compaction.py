"""Tests for the write-ahead log, crash recovery and minor compaction."""

import pytest

from repro.errors import StorageError
from repro.hbase import Cell, Region, WriteAheadLog
from repro.hbase.wal import WALRecord


def cell(row, ts=1, value=b"v", qualifier=b"q", delete=False):
    return Cell(row=row, family="f", qualifier=qualifier, timestamp=ts,
                value=value, is_delete=delete)


class TestWriteAheadLog:
    def test_append_assigns_increasing_sequences(self):
        wal = WriteAheadLog()
        s1 = wal.append(cell(b"a"))
        s2 = wal.append(cell(b"b"))
        assert s2 == s1 + 1
        assert wal.last_sequence == s2
        assert len(wal) == 2

    def test_replay_in_order(self):
        wal = WriteAheadLog()
        for row in (b"x", b"y", b"z"):
            wal.append(cell(row))
        assert [c.row for c in wal.replay()] == [b"x", b"y", b"z"]

    def test_truncate(self):
        wal = WriteAheadLog()
        for row in (b"a", b"b", b"c"):
            wal.append(cell(row))
        dropped = wal.truncate_to(2)
        assert dropped == 2
        assert [c.row for c in wal.replay()] == [b"c"]

    def test_replay_stops_at_torn_tail(self):
        wal = WriteAheadLog()
        wal.append(cell(b"good1"))
        wal.append(cell(b"good2"))
        wal.append(cell(b"torn"))
        wal.corrupt_tail()
        assert [c.row for c in wal.replay()] == [b"good1", b"good2"]

    def test_corrupt_empty_log_rejected(self):
        with pytest.raises(StorageError):
            WriteAheadLog().corrupt_tail()

    def test_record_checksum_detects_tampering(self):
        wal = WriteAheadLog()
        wal.append(cell(b"r", value=b"original"))
        record = wal._records[0]
        assert record.is_valid()
        forged = WALRecord(
            sequence=record.sequence,
            cell=cell(b"r", value=b"forged"),
            crc=record.crc,
        )
        assert not forged.is_valid()


class TestCrashRecovery:
    def test_unflushed_writes_recovered(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        region.put(cell(b"a", value=b"1"))
        region.put(cell(b"b", value=b"2"))
        # Crash: the region object (memstore) is lost; the WAL survives.
        recovered = Region.recover(wal, families=["f"])
        assert recovered.get(b"a", "f", b"q") == b"1"
        assert recovered.get(b"b", "f", b"q") == b"2"

    def test_flush_truncates_wal(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        region.put(cell(b"a"))
        region.put(cell(b"b"))
        assert len(wal) == 2
        region.flush()  # full flush -> everything durable in store files
        assert len(wal) == 0

    def test_recovery_after_flush_and_more_writes(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        region.put(cell(b"flushed", value=b"old"))
        region.flush()
        surviving_files = list(region._store_files["f"])
        region.put(cell(b"unflushed", value=b"new"))
        # Crash; reopen store files + replay WAL.
        recovered = Region.recover(wal, families=["f"])
        recovered.adopt_store_files("f", surviving_files)
        assert recovered.get(b"flushed", "f", b"q") == b"old"
        assert recovered.get(b"unflushed", "f", b"q") == b"new"

    def test_recovered_deletes_still_shadow(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        region.put(cell(b"r", ts=1))
        region.delete(b"r", "f", b"q", timestamp=2)
        recovered = Region.recover(wal, families=["f"])
        assert recovered.get(b"r", "f", b"q") is None

    def test_torn_tail_loses_only_last_write(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        region.put(cell(b"a"))
        region.put(cell(b"b"))
        wal.corrupt_tail()
        recovered = Region.recover(wal, families=["f"])
        assert recovered.get(b"a", "f", b"q") == b"v"
        assert recovered.get(b"b", "f", b"q") is None


class TestMinorCompaction:
    def test_merges_files_without_dropping_tombstones(self):
        region = Region(families=["f"])
        region.put(cell(b"r", ts=1, value=b"live"))
        region.flush()
        region.delete(b"r", "f", b"q", timestamp=2)
        region.flush()
        assert region.store_file_count("f") == 2
        region.minor_compact("f")
        assert region.store_file_count("f") == 1
        # The tombstone still shadows the put after minor compaction.
        assert region.get(b"r", "f", b"q") is None
        # All versions (put + tombstone) survive; a major compaction
        # is what finally drops them.
        assert region.approx_rows("f") == 2
        region.compact()
        assert region.approx_rows("f") == 0

    def test_automatic_minor_compaction_threshold(self):
        region = Region(families=["f"], minor_compaction_threshold=3)
        for i in range(6):
            region.put(cell(b"row%d" % i))
            region.flush()
        # Never accumulates 3+ files: each threshold hit merges to one.
        assert region.store_file_count("f") < 3
        for i in range(6):
            assert region.get(b"row%d" % i, "f", b"q") == b"v"

    def test_single_file_noop(self):
        region = Region(families=["f"])
        region.put(cell(b"a"))
        region.flush()
        region.minor_compact("f")
        assert region.store_file_count("f") == 1

    def test_preserves_all_versions(self):
        region = Region(families=["f"])
        for ts in (1, 2, 3):
            region.put(cell(b"r", ts=ts, value=b"v%d" % ts))
            region.flush()
        region.minor_compact("f")
        assert region.approx_rows("f") == 3
        assert region.get(b"r", "f", b"q") == b"v3"
