"""Tests for the write-ahead log, crash recovery and minor compaction."""

import pytest

from repro.errors import StorageError
from repro.hbase import Cell, Region, WriteAheadLog
from repro.hbase.wal import WALRecord


def cell(row, ts=1, value=b"v", qualifier=b"q", delete=False):
    return Cell(row=row, family="f", qualifier=qualifier, timestamp=ts,
                value=value, is_delete=delete)


class TestWriteAheadLog:
    def test_append_assigns_increasing_sequences(self):
        wal = WriteAheadLog()
        s1 = wal.append(cell(b"a"))
        s2 = wal.append(cell(b"b"))
        assert s2 == s1 + 1
        assert wal.last_sequence == s2
        assert len(wal) == 2

    def test_replay_in_order(self):
        wal = WriteAheadLog()
        for row in (b"x", b"y", b"z"):
            wal.append(cell(row))
        assert [c.row for c in wal.replay()] == [b"x", b"y", b"z"]

    def test_truncate(self):
        wal = WriteAheadLog()
        for row in (b"a", b"b", b"c"):
            wal.append(cell(row))
        dropped = wal.truncate_to(2)
        assert dropped == 2
        assert [c.row for c in wal.replay()] == [b"c"]

    def test_replay_stops_at_torn_tail(self):
        wal = WriteAheadLog()
        wal.append(cell(b"good1"))
        wal.append(cell(b"good2"))
        wal.append(cell(b"torn"))
        wal.corrupt_tail()
        assert [c.row for c in wal.replay()] == [b"good1", b"good2"]

    def test_corrupt_empty_log_rejected(self):
        with pytest.raises(StorageError):
            WriteAheadLog().corrupt_tail()

    def test_record_checksum_detects_tampering(self):
        wal = WriteAheadLog()
        wal.append(cell(b"r", value=b"original"))
        record = wal._records[0]
        assert record.is_valid()
        forged = WALRecord(
            sequence=record.sequence,
            cell=cell(b"r", value=b"forged"),
            crc=record.crc,
        )
        assert not forged.is_valid()


class TestGroupCommit:
    """The streaming tier's batched write path: one WAL sync boundary
    per batch, but recovery must be indistinguishable from single puts."""

    def test_append_batch_is_one_sync_boundary(self):
        wal = WriteAheadLog()
        first, last = wal.append_batch([cell(b"a"), cell(b"b"), cell(b"c")])
        assert (last - first + 1) == 3
        assert len(wal) == 3
        assert wal.sync_count == 1  # the group commit

        single = WriteAheadLog()
        for row in (b"a", b"b", b"c"):
            single.append(cell(row))
        assert single.sync_count == 3  # one fsync-equivalent per put

    def test_empty_batch_is_a_noop(self):
        wal = WriteAheadLog()
        assert wal.append_batch([]) == (0, 0)
        assert wal.sync_count == 0
        assert len(wal) == 0

    def test_batched_replay_identical_to_single_puts_after_crash(self):
        rows = [b"row%02d" % i for i in range(8)]
        cells = [cell(r, ts=i + 1, value=b"v%d" % i) for i, r in enumerate(rows)]

        single_wal = WriteAheadLog()
        single_region = Region(families=["f"], wal=single_wal)
        for c in cells:
            single_region.put(c)

        batched_wal = WriteAheadLog()
        batched_region = Region(families=["f"], wal=batched_wal)
        batched_region.put_batch(cells)

        # Crash both: memstores lost, WALs survive.  Replay must agree
        # record-for-record regardless of how the writes were committed.
        replayed_single = [(c.row, c.timestamp, c.value)
                           for c in single_wal.replay()]
        replayed_batched = [(c.row, c.timestamp, c.value)
                            for c in batched_wal.replay()]
        assert replayed_batched == replayed_single

        recovered = Region.recover(batched_wal, families=["f"])
        for i, r in enumerate(rows):
            assert recovered.get(r, "f", b"q") == b"v%d" % i

    def test_torn_tail_in_batch_loses_only_final_record(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        region.put_batch([cell(b"a"), cell(b"b"), cell(b"c")])
        wal.corrupt_tail()
        recovered = Region.recover(wal, families=["f"])
        assert recovered.get(b"a", "f", b"q") == b"v"
        assert recovered.get(b"b", "f", b"q") == b"v"
        assert recovered.get(b"c", "f", b"q") is None

    def test_records_after_watermark(self):
        wal = WriteAheadLog()
        seqs = [wal.append(cell(b"r%d" % i)) for i in range(5)]
        watermark = seqs[1]
        tail = list(wal.records_after(watermark))
        assert [rec.sequence for rec in tail] == seqs[2:]
        # A torn tail ends the iteration early rather than yielding junk.
        wal.corrupt_tail()
        assert [rec.sequence for rec in wal.records_after(watermark)] == seqs[2:-1]

    def test_put_batch_validates_before_any_effect(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        bad = [cell(b"ok"), Cell(row=b"bad", family="nope", qualifier=b"q",
                                 timestamp=1, value=b"v")]
        with pytest.raises(StorageError):
            region.put_batch(bad)
        # All-or-nothing: the valid cell must not have half-applied.
        assert len(wal) == 0
        assert region.get(b"ok", "f", b"q") is None

    def test_put_batch_counts_and_seqid(self):
        region = Region(families=["f"], wal=WriteAheadLog())
        before = region.data_seqid
        region.put_batch([cell(b"a"), cell(b"b")])
        assert region.write_count == 2
        assert region.data_seqid == before + 2

    def test_batch_duplicate_rows_last_wins(self):
        region = Region(families=["f"], wal=WriteAheadLog())
        region.put_batch([cell(b"dup", ts=1, value=b"first"),
                          cell(b"dup", ts=1, value=b"second")])
        assert region.get(b"dup", "f", b"q") == b"second"

    def test_batch_merges_with_existing_memstore(self):
        region = Region(families=["f"], wal=WriteAheadLog())
        region.put(cell(b"b", value=b"old-b"))
        region.put(cell(b"d", value=b"old-d"))
        region.put_batch([cell(b"a", value=b"new-a"),
                          cell(b"b", value=b"new-b"),
                          cell(b"e", value=b"new-e")])
        assert region.get(b"a", "f", b"q") == b"new-a"
        assert region.get(b"b", "f", b"q") == b"new-b"  # replaced
        assert region.get(b"d", "f", b"q") == b"old-d"  # untouched
        assert region.get(b"e", "f", b"q") == b"new-e"
        scanned = [c.row for c in region.scan("f")]
        assert scanned == sorted(scanned)  # memstore order survives merge


class TestMemStoreSegments:
    """Lazy segment consolidation must be invisible to readers."""

    def _memstore(self):
        from repro.hbase.memstore import MemStore

        return MemStore()

    def test_put_after_put_batch_wins_on_same_key(self):
        store = self._memstore()
        store.put_batch([cell(b"k", ts=1, value=b"batched"),
                         cell(b"m", ts=1)])
        store.put(cell(b"k", ts=1, value=b"later-single"))
        cells = store.snapshot()
        assert [c.row for c in cells] == [b"k", b"m"]
        assert cells[0].value == b"later-single"

    def test_cross_batch_duplicates_last_wins(self):
        store = self._memstore()
        store.put_batch([cell(b"k", ts=1, value=b"one"),
                         cell(b"a", ts=1)])
        store.put_batch([cell(b"k", ts=1, value=b"two"),
                         cell(b"z", ts=1)])
        store.put_batch([cell(b"k", ts=1, value=b"three")])
        assert len(store) == 3  # a, k, z after consolidation
        snap = {c.row: c.value for c in store.snapshot()}
        assert snap[b"k"] == b"three"

    def test_scan_consolidates_and_bounds(self):
        store = self._memstore()
        store.put(cell(b"b", ts=1))
        store.put_batch([cell(b"d", ts=1), cell(b"a", ts=1),
                         cell(b"c", ts=1)])
        rows = [c.row for c in store.scan(start_row=b"b", stop_row=b"d")]
        assert rows == [b"b", b"c"]
        assert [c.row for c in store.scan()] == [b"a", b"b", b"c", b"d"]

    def test_segments_match_sequential_puts(self):
        import random

        rng = random.Random(5)
        rows = [b"%03d" % rng.randrange(60) for _ in range(200)]
        sequential, segmented = self._memstore(), self._memstore()
        for i, row in enumerate(rows):
            sequential.put(cell(row, ts=1, value=b"%d" % i))
        batched = [cell(row, ts=1, value=b"%d" % i)
                   for i, row in enumerate(rows)]
        for start in range(0, len(batched), 16):
            segmented.put_batch(batched[start:start + 16])
        want = [(c.row, c.value) for c in sequential.snapshot()]
        got = [(c.row, c.value) for c in segmented.snapshot()]
        assert got == want
        assert segmented.size_bytes == sequential.size_bytes


class TestCrashRecovery:
    def test_unflushed_writes_recovered(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        region.put(cell(b"a", value=b"1"))
        region.put(cell(b"b", value=b"2"))
        # Crash: the region object (memstore) is lost; the WAL survives.
        recovered = Region.recover(wal, families=["f"])
        assert recovered.get(b"a", "f", b"q") == b"1"
        assert recovered.get(b"b", "f", b"q") == b"2"

    def test_flush_truncates_wal(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        region.put(cell(b"a"))
        region.put(cell(b"b"))
        assert len(wal) == 2
        region.flush()  # full flush -> everything durable in store files
        assert len(wal) == 0

    def test_recovery_after_flush_and_more_writes(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        region.put(cell(b"flushed", value=b"old"))
        region.flush()
        surviving_files = list(region._store_files["f"])
        region.put(cell(b"unflushed", value=b"new"))
        # Crash; reopen store files + replay WAL.
        recovered = Region.recover(wal, families=["f"])
        recovered.adopt_store_files("f", surviving_files)
        assert recovered.get(b"flushed", "f", b"q") == b"old"
        assert recovered.get(b"unflushed", "f", b"q") == b"new"

    def test_recovered_deletes_still_shadow(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        region.put(cell(b"r", ts=1))
        region.delete(b"r", "f", b"q", timestamp=2)
        recovered = Region.recover(wal, families=["f"])
        assert recovered.get(b"r", "f", b"q") is None

    def test_torn_tail_loses_only_last_write(self):
        wal = WriteAheadLog()
        region = Region(families=["f"], wal=wal)
        region.put(cell(b"a"))
        region.put(cell(b"b"))
        wal.corrupt_tail()
        recovered = Region.recover(wal, families=["f"])
        assert recovered.get(b"a", "f", b"q") == b"v"
        assert recovered.get(b"b", "f", b"q") is None


class TestMinorCompaction:
    def test_merges_files_without_dropping_tombstones(self):
        region = Region(families=["f"])
        region.put(cell(b"r", ts=1, value=b"live"))
        region.flush()
        region.delete(b"r", "f", b"q", timestamp=2)
        region.flush()
        assert region.store_file_count("f") == 2
        region.minor_compact("f")
        assert region.store_file_count("f") == 1
        # The tombstone still shadows the put after minor compaction.
        assert region.get(b"r", "f", b"q") is None
        # All versions (put + tombstone) survive; a major compaction
        # is what finally drops them.
        assert region.approx_rows("f") == 2
        region.compact()
        assert region.approx_rows("f") == 0

    def test_automatic_minor_compaction_threshold(self):
        region = Region(families=["f"], minor_compaction_threshold=3)
        for i in range(6):
            region.put(cell(b"row%d" % i))
            region.flush()
        # Never accumulates 3+ files: each threshold hit merges to one.
        assert region.store_file_count("f") < 3
        for i in range(6):
            assert region.get(b"row%d" % i, "f", b"q") == b"v"

    def test_single_file_noop(self):
        region = Region(families=["f"])
        region.put(cell(b"a"))
        region.flush()
        region.minor_compact("f")
        assert region.store_file_count("f") == 1

    def test_preserves_all_versions(self):
        region = Region(families=["f"])
        for ts in (1, 2, 3):
            region.put(cell(b"r", ts=ts, value=b"v%d" % ts))
            region.flush()
        region.minor_compact("f")
        assert region.approx_rows("f") == 3
        assert region.get(b"r", "f", b"q") == b"v3"
