"""Tests for cross-validation and grid search."""

import pytest

from repro.config import SentimentConfig
from repro.datagen import ReviewGenerator
from repro.errors import ValidationError
from repro.text import cross_validate, grid_search, k_fold_splits


@pytest.fixture(scope="module")
def tuning_corpus():
    return ReviewGenerator(seed=33, capacity=4000,
                           noise_onset=0.5, max_noise=0.2).labeled_texts(900)


class TestKFold:
    def test_partitions_cover_everything(self):
        items = list(range(100))
        splits = k_fold_splits(items, k=5, seed=1)
        assert len(splits) == 5
        for train, validation in splits:
            assert len(train) + len(validation) == 100
            assert set(train) | set(validation) == set(items)
            assert not set(train) & set(validation)

    def test_validation_folds_are_disjoint(self):
        splits = k_fold_splits(list(range(90)), k=3, seed=2)
        seen = set()
        for _train, validation in splits:
            fold = set(validation)
            assert not fold & seen
            seen |= fold
        assert seen == set(range(90))

    def test_deterministic_per_seed(self):
        a = k_fold_splits(list(range(50)), k=5, seed=7)
        b = k_fold_splits(list(range(50)), k=5, seed=7)
        assert a == b
        c = k_fold_splits(list(range(50)), k=5, seed=8)
        assert a != c

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            k_fold_splits([1, 2, 3], k=1)
        with pytest.raises(ValidationError):
            k_fold_splits([1, 2], k=3)


class TestCrossValidate:
    def test_reasonable_accuracy(self, tuning_corpus):
        accuracy = cross_validate(
            SentimentConfig.optimized(), tuning_corpus, k=3
        )
        assert 0.8 < accuracy <= 1.0

    def test_optimized_beats_baseline(self, tuning_corpus):
        base = cross_validate(SentimentConfig.baseline(), tuning_corpus, k=3)
        opt = cross_validate(SentimentConfig.optimized(), tuning_corpus, k=3)
        assert opt > base


class TestGridSearch:
    def test_small_grid_finds_bigrams(self, tuning_corpus):
        result = grid_search(
            tuning_corpus,
            grid={"use_bigrams": [False, True]},
            k=3,
        )
        assert len(result.trials) == 2
        # On this corpus bigrams are the dominant optimization.
        assert result.best_config.use_bigrams is True
        assert result.best_accuracy == result.trials[0][1]

    def test_trials_sorted_best_first(self, tuning_corpus):
        result = grid_search(
            tuning_corpus,
            grid={"use_tf": [False, True], "use_bigrams": [False, True]},
            k=3,
        )
        accuracies = [acc for _o, acc in result.trials]
        assert accuracies == sorted(accuracies, reverse=True)
        assert len(result.trials) == 4

    def test_unknown_field_rejected(self, tuning_corpus):
        with pytest.raises(ValidationError):
            grid_search(tuning_corpus, grid={"use_quantum": [True]})

    def test_best_config_carries_base_fields(self, tuning_corpus):
        base = SentimentConfig(stem=False)
        result = grid_search(
            tuning_corpus[:300],
            grid={"use_tf": [False, True]},
            base=base,
            k=2,
        )
        assert result.best_config.stem is False
