"""Tests for repro.geo.point and repro.geo.bbox."""

import math

import pytest

from repro.errors import ValidationError
from repro.geo import BoundingBox, GeoPoint


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint(37.98, 23.73)
        assert p.lat == 37.98
        assert p.lon == 23.73

    def test_latitude_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValidationError):
            GeoPoint(-90.5, 0.0)

    def test_longitude_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            GeoPoint(0.0, 180.5)
        with pytest.raises(ValidationError):
            GeoPoint(0.0, -181.0)

    def test_boundary_values_accepted(self):
        GeoPoint(90.0, 180.0)
        GeoPoint(-90.0, -180.0)

    def test_points_are_hashable_and_equal(self):
        a = GeoPoint(1.0, 2.0)
        b = GeoPoint(1.0, 2.0)
        assert a == b
        assert len({a, b}) == 1

    def test_distance_to_self_is_zero(self):
        p = GeoPoint(37.98, 23.73)
        assert p.distance_m(p) == 0.0

    def test_distance_is_symmetric(self):
        a = GeoPoint(37.98, 23.73)
        b = GeoPoint(40.64, 22.94)
        assert a.distance_m(b) == pytest.approx(b.distance_m(a))

    def test_athens_thessaloniki_distance(self):
        # Great-circle Athens -> Thessaloniki is ~300 km.
        a = GeoPoint(37.9838, 23.7275)
        b = GeoPoint(40.6401, 22.9444)
        assert 290_000 < a.distance_m(b) < 310_000

    def test_as_tuple(self):
        assert GeoPoint(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestBoundingBox:
    def test_contains_inside_and_borders(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.contains(GeoPoint(5.0, 5.0))
        assert box.contains(GeoPoint(0.0, 0.0))
        assert box.contains(GeoPoint(10.0, 10.0))
        assert not box.contains(GeoPoint(10.001, 5.0))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValidationError):
            BoundingBox(10.0, 0.0, 0.0, 10.0)
        with pytest.raises(ValidationError):
            BoundingBox(0.0, 10.0, 10.0, 0.0)

    def test_from_points(self):
        box = BoundingBox.from_points(
            [GeoPoint(1.0, 7.0), GeoPoint(3.0, 2.0), GeoPoint(2.0, 5.0)]
        )
        assert box.as_tuple() == (1.0, 2.0, 3.0, 7.0)

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValidationError):
            BoundingBox.from_points([])

    def test_intersects(self):
        a = BoundingBox(0.0, 0.0, 5.0, 5.0)
        b = BoundingBox(4.0, 4.0, 8.0, 8.0)
        c = BoundingBox(6.0, 6.0, 9.0, 9.0)
        assert a.intersects(b)
        assert b.intersects(a)
        assert not a.intersects(c)

    def test_touching_borders_intersect(self):
        a = BoundingBox(0.0, 0.0, 5.0, 5.0)
        b = BoundingBox(5.0, 0.0, 10.0, 5.0)
        assert a.intersects(b)

    def test_union_covers_both(self):
        a = BoundingBox(0.0, 0.0, 2.0, 2.0)
        b = BoundingBox(5.0, 5.0, 6.0, 6.0)
        u = a.union(b)
        assert u.contains(GeoPoint(0.0, 0.0))
        assert u.contains(GeoPoint(6.0, 6.0))

    def test_expand_m_grows_every_side(self):
        box = BoundingBox(37.0, 23.0, 38.0, 24.0)
        grown = box.expand_m(1000.0)
        assert grown.min_lat < box.min_lat
        assert grown.max_lat > box.max_lat
        assert grown.min_lon < box.min_lon
        assert grown.max_lon > box.max_lon

    def test_expand_clamps_at_poles(self):
        box = BoundingBox(89.99, 0.0, 90.0, 1.0)
        grown = box.expand_m(10_000.0)
        assert grown.max_lat == 90.0

    def test_split_grid_counts_and_coverage(self):
        box = BoundingBox(0.0, 0.0, 4.0, 6.0)
        cells = box.split_grid(2, 3)
        assert len(cells) == 6
        # Every cell sits inside the parent and the union is the parent.
        u = cells[0]
        for cell in cells[1:]:
            u = u.union(cell)
        assert u.as_tuple() == box.as_tuple()

    def test_split_grid_invalid(self):
        with pytest.raises(ValidationError):
            BoundingBox(0, 0, 1, 1).split_grid(0, 2)

    def test_center(self):
        assert BoundingBox(0.0, 0.0, 2.0, 4.0).center == GeoPoint(1.0, 2.0)

    def test_contains_coords_matches_contains(self):
        box = BoundingBox(1.0, 1.0, 2.0, 2.0)
        assert box.contains_coords(1.5, 1.5)
        assert not box.contains_coords(0.5, 1.5)
