"""Tests for the MapReduce engine."""

import pytest

from repro.errors import MapReduceError
from repro.mapreduce import (
    HashPartitioner,
    InputSplit,
    JobRunner,
    MapReduceJob,
    RangePartitioner,
    make_splits,
)


def word_count_job(combiner=None, **kwargs):
    def mapper(record, emit, counters):
        for word in record.split():
            emit(word, 1)

    def reducer(key, values, emit, counters):
        emit(key, sum(values))

    return MapReduceJob(
        name="wc", mapper=mapper, reducer=reducer, combiner=combiner, **kwargs
    )


class TestSplits:
    def test_even_division(self):
        splits = make_splits(list(range(10)), 5)
        assert [len(s) for s in splits] == [2, 2, 2, 2, 2]

    def test_uneven_division(self):
        splits = make_splits(list(range(10)), 3)
        assert [len(s) for s in splits] == [4, 3, 3]
        assert [r for s in splits for r in s.records] == list(range(10))

    def test_fewer_records_than_splits(self):
        splits = make_splits([1, 2], 10)
        assert len(splits) == 2

    def test_empty_input(self):
        assert make_splits([], 4) == []

    def test_invalid_split_count(self):
        with pytest.raises(MapReduceError):
            make_splits([1], 0)


class TestPartitioners:
    def test_hash_is_deterministic_and_in_range(self):
        p = HashPartitioner()
        for key in ("abc", 42, ("tuple", 1)):
            idx = p.partition(key, 7)
            assert idx == p.partition(key, 7)
            assert 0 <= idx < 7

    def test_hash_invalid_reducers(self):
        with pytest.raises(MapReduceError):
            HashPartitioner().partition("x", 0)

    def test_range_partitioner(self):
        p = RangePartitioner(boundaries=[10, 20])
        assert p.partition(5, 3) == 0
        assert p.partition(10, 3) == 1
        assert p.partition(15, 3) == 1
        assert p.partition(25, 3) == 2

    def test_range_partitioner_clamps(self):
        p = RangePartitioner(boundaries=[10, 20, 30])
        assert p.partition(99, 2) == 1

    def test_range_requires_sorted(self):
        with pytest.raises(MapReduceError):
            RangePartitioner(boundaries=[3, 1])


class TestJobRunner:
    def test_word_count(self):
        with JobRunner(max_workers=4) as runner:
            result = runner.run(
                word_count_job(num_mappers=3, num_reducers=2),
                ["a b a", "b c", "c c c"],
            )
        assert result.as_dict() == {"a": 2, "b": 2, "c": 4}
        assert result.map_tasks == 3

    def test_combiner_gives_same_result(self):
        def combiner(key, values, emit, counters):
            emit(key, sum(values))

        records = ["x y x"] * 50
        with JobRunner(max_workers=4) as runner:
            plain = runner.run(word_count_job(num_mappers=4), records)
            combined = runner.run(
                word_count_job(combiner=combiner, num_mappers=4), records
            )
        assert plain.as_dict() == combined.as_dict()
        # The combiner must shrink the shuffle.
        assert combined.counters.get("combine.records_out") < plain.counters.get(
            "map.records_out"
        )

    def test_empty_input(self):
        with JobRunner() as runner:
            result = runner.run(word_count_job(), [])
        assert result.pairs == []
        assert result.map_tasks == 0

    def test_counters_aggregate(self):
        with JobRunner() as runner:
            result = runner.run(word_count_job(num_mappers=2), ["a", "b b"])
        assert result.counters.get("map.records_in") == 2
        assert result.counters.get("map.records_out") == 3

    def test_output_deterministic_across_runs(self):
        records = ["m n o p"] * 20
        with JobRunner(max_workers=8) as runner:
            a = runner.run(word_count_job(num_mappers=8), records).pairs
            b = runner.run(word_count_job(num_mappers=8), records).pairs
        assert a == b

    def test_duplicate_keys_in_as_dict_rejected(self):
        def mapper(record, emit, counters):
            emit("k", record)

        def reducer(key, values, emit, counters):
            for v in values:
                emit(key, v)  # deliberately emits per value

        job = MapReduceJob(name="dup", mapper=mapper, reducer=reducer)
        with JobRunner() as runner:
            result = runner.run(job, [1, 2])
        with pytest.raises(MapReduceError):
            result.as_dict()

    def test_invalid_job_parameters(self):
        def f(*args):
            pass

        with pytest.raises(MapReduceError):
            MapReduceJob(name="bad", mapper=f, reducer=f, num_reducers=0)
        with pytest.raises(MapReduceError):
            MapReduceJob(name="bad", mapper=f, reducer=f, num_mappers=0)

    def test_reducer_sees_sorted_keys(self):
        seen = []

        def mapper(record, emit, counters):
            emit(record, 1)

        def reducer(key, values, emit, counters):
            seen.append(key)
            emit(key, sum(values))

        job = MapReduceJob(
            name="sorted", mapper=mapper, reducer=reducer, num_reducers=1
        )
        with JobRunner() as runner:
            runner.run(job, ["c", "a", "b"])
        assert seen == sorted(seen)
