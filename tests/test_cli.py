"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_describe_defaults(self):
        args = build_parser().parse_args(["describe"])
        assert args.nodes == 16
        assert args.pois == 1000

    def test_describe_rejects_odd_cluster(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["describe", "--nodes", "7"])


class TestCommands:
    def test_stem(self, capsys):
        assert main(["stem", "Running", "ponies"]) == 0
        out = capsys.readouterr().out
        assert "Running -> run" in out
        assert "ponies -> poni" in out

    def test_describe(self, capsys):
        assert main(["describe", "--nodes", "4", "--pois", "50"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pois"] == 50
        assert payload["hbase"]["cluster"]["nodes"] == 4

    def test_classify(self, capsys):
        assert main(
            ["classify", "excellent wonderful dinner",
             "terrible awful rude service"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert "positive" in lines[0]
        assert "negative" in lines[1]

    def test_figure4_quick(self, capsys):
        assert main(["figure4", "--documents", "800"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "baseline" in out and "optimized" in out

    def test_figure2_quick(self, capsys):
        assert main(["figure2", "--users", "1200"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "16 nodes" in out
