"""Legacy setup shim: lets ``pip install -e .`` work offline with the
pre-PEP-660 setuptools available in this environment."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "MoDisSENSE reproduction: a distributed spatio-temporal and "
        "textual processing platform for social networking services "
        "(SIGMOD 2015)"
    ),
    license="Apache-2.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
