"""A full simulated day of platform operation.

Drives the periodic pipeline the paper describes — Data Collection every
15 minutes, HotIn Update and Event Detection every hour — with the
deterministic scheduler, while users keep checking in and a crowd event
builds up downtown.  At the end of the day: trending reflects the crowd,
the event was auto-registered as a POI, and the metrics wrapper shows
what the query tier served.

Run with::

    python examples/platform_day.py
"""

from __future__ import annotations

import random

from repro import MoDisSENSE, SearchQuery, TrendingQuery
from repro.config import PlatformConfig
from repro.core.monitoring import InstrumentedQueryAnswering
from repro.core.scheduler import build_platform_scheduler
from repro.datagen import ReviewGenerator, generate_pois
from repro.datagen.gps import GPSPoint
from repro.geo.distance import offset_point_m
from repro.social import CheckIn, FriendInfo

DAY0 = 1_433_030_400  # 2015-05-31 00:00 UTC
HOUR = 3600


def main() -> None:
    # Long-lived OAuth tokens (the mobile app's "offline access" grant):
    # the periodic pipeline must survive a day without re-login.
    from repro.social import NETWORK_FACEBOOK, OAuthProvider, SimulatedNetwork

    facebook_net = SimulatedNetwork(
        NETWORK_FACEBOOK,
        oauth=OAuthProvider(NETWORK_FACEBOOK, token_ttl_s=48 * HOUR),
    )
    platform = MoDisSENSE(
        PlatformConfig.small(), plugins={NETWORK_FACEBOOK: facebook_net}
    )
    pois = generate_pois(count=600, seed=70)
    platform.load_pois(pois)
    platform.text_processing.train(
        ReviewGenerator(seed=71, capacity=4000).labeled_texts(1500)
    )

    facebook = platform.plugins["facebook"]
    facebook.add_profile(FriendInfo("fb_1", "Our user", "pic"))
    for i in range(2, 26):
        facebook.add_profile(FriendInfo("fb_%d" % i, "Friend %d" % i, "pic"))
        facebook.add_friendship("fb_1", "fb_%d" % i)
    platform.register_user("facebook", "fb_1", "pw", now=float(DAY0))

    # Metrics on the query tier.
    instrumented = InstrumentedQueryAnswering(platform.query_answering)

    # Periodic jobs per the platform's JobsConfig.
    scheduler = build_platform_scheduler(platform, start_at=float(DAY0))

    rng = random.Random(72)
    athens_pois = [p for p in pois if p.city == "Athens"]
    # An unknown gathering spot ~1 km from the center.
    event_lat, event_lon = offset_point_m(37.9838, 23.7275, 800.0, 600.0)

    print("Simulating 2015-05-31, hour by hour...")
    for hour in range(24):
        now = DAY0 + hour * HOUR
        # Friends check in during waking hours.
        if 8 <= hour <= 23:
            for _ in range(rng.randint(2, 5)):
                friend = rng.randint(2, 25)
                poi = rng.choice(athens_pois)
                facebook.add_checkin(
                    CheckIn("fb_%d" % friend, poi.poi_id, poi.lat, poi.lon,
                            now + rng.randint(0, HOUR - 1),
                            "lovely wonderful place"
                            if rng.random() < 0.7 else "noisy crowded"))
        # From 19:00 a crowd converges on the unknown spot.
        if 19 <= hour <= 22:
            for _ in range(40):
                north, east = rng.gauss(0, 20.0), rng.gauss(0, 20.0)
                lat, lon = offset_point_m(event_lat, event_lon, north, east)
                platform.push_gps([
                    GPSPoint(rng.randint(1, 25), lat, lon,
                             now + rng.randint(0, HOUR - 1))
                ])
        # Advance simulated time; due periodic jobs fire.
        scheduler.advance_to(float(now + HOUR))
        # Our user searches a few times a day through the metrics wrapper.
        if hour in (9, 13, 20):
            instrumented.search(
                SearchQuery(friend_ids=tuple(range(2, 26)),
                            sort_by="interest", limit=5)
            )

    print("\nPeriodic job activity:")
    for name in ("data_collection", "hotin_update", "event_detection"):
        job = scheduler.job(name)
        print("  %-16s fired %2d times" % (name, job.fire_count))

    detected = [p for p in platform.poi_repository.all_pois() if p.auto_detected]
    print("\nAuto-detected POIs: %d" % len(detected))
    for poi in detected:
        print("  %-22s crowd %d at (%.4f, %.4f)"
              % (poi.name, int(poi.hotness), poi.lat, poi.lon))

    trending = platform.trending_events(
        TrendingQuery(now=DAY0 + 24 * HOUR, window_s=6 * HOUR,
                      friend_ids=tuple(range(2, 26)), limit=3)
    )
    print("\nTrending tonight (friends, last 6h):")
    for poi in trending.pois:
        print("  %-30s %d visits" % (poi.name, int(poi.score)))

    print("\nQuery-tier metrics:")
    snap = instrumented.metrics.snapshot()
    print("  personalized queries: %d"
          % snap["counters"]["queries.personalized"])
    lat = snap["latencies"]["query.personalized"]
    print("  latency mean %.1f ms, p95 %.1f ms"
          % (lat["mean_ms"], lat["p95_ms"]))

    platform.shutdown()


if __name__ == "__main__":
    main()
