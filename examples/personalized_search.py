"""The paper's Section 4 demo scenario: two users, one query, two answers.

Two MoDisSENSE users with completely different social circles run the
same keyword search ("restaurant") on the same map area.  The first
user's friends love fast food; the second's prefer upscale restaurants.
The platform returns fast-food places to the first user and upscale
restaurants to the second — personalization driven entirely by friends'
classified check-in comments.

Run with::

    python examples/personalized_search.py
"""

from __future__ import annotations

import random

from repro import MoDisSENSE, SearchQuery
from repro.config import PlatformConfig
from repro.datagen import ReviewGenerator, generate_pois
from repro.geo import BoundingBox
from repro.social import CheckIn, FriendInfo

ATHENS = BoundingBox(37.9, 23.6, 38.1, 23.85)


def build_platform() -> MoDisSENSE:
    platform = MoDisSENSE(PlatformConfig.small())
    pois = generate_pois(count=2000, seed=10)
    platform.load_pois(pois)
    platform.text_processing.train(
        ReviewGenerator(seed=11, capacity=5000).labeled_texts(2000)
    )
    return platform


def populate_social_circles(platform: MoDisSENSE) -> None:
    facebook = platform.plugins["facebook"]
    facebook.add_profile(FriendInfo("fb_1", "Alex (fast-food fan)", "pic"))
    facebook.add_profile(FriendInfo("fb_2", "Beatriz (fine dining)", "pic"))
    for i in range(3, 23):
        facebook.add_profile(FriendInfo("fb_%d" % i, "Friend %d" % i, "pic"))
    for i in range(3, 13):  # Alex's circle
        facebook.add_friendship("fb_1", "fb_%d" % i)
    for i in range(13, 23):  # Beatriz's circle
        facebook.add_friendship("fb_2", "fb_%d" % i)

    pois = platform.poi_repository.pois_within(ATHENS)
    fastfood = [p for p in pois if p.category == "fastfood"][:8]
    upscale = [p for p in pois if p.category == "restaurant"][:8]

    rng = random.Random(12)
    ts = 1_000
    for i in range(3, 13):  # fast-food lovers rave about souvlaki
        for poi in rng.sample(fastfood, 5):
            facebook.add_checkin(
                CheckIn("fb_%d" % i, poi.poi_id, poi.lat, poi.lon, ts,
                        "delicious tasty perfect quick bite"))
            ts += 1
        for poi in rng.sample(upscale, 2):  # ...and find fine dining stuffy
            facebook.add_checkin(
                CheckIn("fb_%d" % i, poi.poi_id, poi.lat, poi.lon, ts,
                        "overpriced bland disappointing evening"))
            ts += 1
    for i in range(13, 23):  # fine-dining circle, mirrored tastes
        for poi in rng.sample(upscale, 5):
            facebook.add_checkin(
                CheckIn("fb_%d" % i, poi.poi_id, poi.lat, poi.lon, ts,
                        "superb impeccable gorgeous wonderful dinner"))
            ts += 1
        for poi in rng.sample(fastfood, 2):
            facebook.add_checkin(
                CheckIn("fb_%d" % i, poi.poi_id, poi.lat, poi.lon, ts,
                        "greasy noisy awful"))
            ts += 1


def main() -> None:
    platform = build_platform()
    populate_social_circles(platform)

    platform.register_user("facebook", "fb_1", "pw", now=10_000.0)
    platform.register_user("facebook", "fb_2", "pw", now=10_000.0)
    platform.collect(now=10_000)

    # The SAME query, issued on behalf of each user's friend set.
    def search_for(friend_ids):
        return platform.search(
            SearchQuery(
                bbox=ATHENS,
                keywords=("restaurant", "food", "fastfood", "dinner"),
                friend_ids=friend_ids,
                sort_by="interest",
                limit=5,
            )
        )

    alex = search_for(tuple(range(3, 13)))
    beatriz = search_for(tuple(range(13, 23)))

    print("Query: restaurants in Athens, sorted by friends' opinions\n")
    print("Alex's results (friends love fast food):")
    for poi in alex.pois:
        print("  %-34s score %.2f" % (poi.name, poi.score))
    print("\nBeatriz's results (friends prefer fine dining):")
    for poi in beatriz.pois:
        print("  %-34s score %.2f" % (poi.name, poi.score))

    overlap = {p.poi_id for p in alex.pois} & {p.poi_id for p in beatriz.pois}
    print("\nOverlap between the two result sets: %d POIs" % len(overlap))

    platform.shutdown()


if __name__ == "__main__":
    main()
