"""Semantic trajectories and the semi-automatic daily blog.

A user's phone streams GPS all day; MoDisSENSE infers where they
actually *stayed* (stay-point detection), matches the stays against the
POI repository, attaches the user's own check-in comments, and drafts a
daily blog.  The user then edits it — reorders stops, fixes times, adds
notes — and shares it to a linked social network, exactly the Figure 5b
workflow of the paper's demo.

Run with::

    python examples/daily_blog.py
"""

from __future__ import annotations

from repro import MoDisSENSE
from repro.config import PlatformConfig
from repro.core.repositories.poi import POI
from repro.datagen import ReviewGenerator
from repro.datagen.gps import GPSPoint
from repro.geo.distance import offset_point_m
from repro.social import FriendInfo

DAY0 = 1_433_030_400  # 2015-05-31 00:00 UTC


def wander(lat, lon, t0, minutes, jitter_m=10.0, step_s=180):
    """GPS samples dwelling around one spot."""
    import random

    rng = random.Random(int(t0))
    points = []
    for i in range(0, minutes * 60, step_s):
        north = rng.gauss(0, jitter_m)
        east = rng.gauss(0, jitter_m)
        plat, plon = offset_point_m(lat, lon, north, east)
        points.append(GPSPoint(1, plat, plon, int(t0) + i))
    return points


def main() -> None:
    platform = MoDisSENSE(PlatformConfig.small())
    platform.text_processing.train(
        ReviewGenerator(seed=40, capacity=4000).labeled_texts(1200)
    )

    # The places of our user's day.
    stops = [
        (1, "Kolonaki Espresso Bar", 37.9790, 23.7420, 9 * 3600, 45),
        (2, "National Garden", 37.9726, 23.7375, 11 * 3600, 90),
        (3, "Plaka Taverna", 37.9687, 23.7290, 14 * 3600, 75),
    ]
    for poi_id, name, lat, lon, _t, _m in stops:
        platform.poi_repository.add(
            POI(poi_id=poi_id, name=name, lat=lat, lon=lon,
                keywords=("athens",), category="misc")
        )

    facebook = platform.plugins["facebook"]
    facebook.add_profile(FriendInfo("fb_1", "Katerina", "pic"))
    platform.register_user("facebook", "fb_1", "pw", now=float(DAY0))

    # Stream the day's GPS trace.
    for _poi_id, _name, lat, lon, offset, minutes in stops:
        platform.push_gps(wander(lat, lon, DAY0 + offset, minutes))
    # A comment made while at the taverna (enriches the blog).
    platform.text_processing.process_comment(
        1, 3, DAY0 + 14 * 3600 + 600, "wonderful moussaka, superb house wine"
    )

    # 1. Automatic draft from the inferred semantic trajectory.
    blog = platform.generate_blog(1, DAY0, DAY0 + 86_400)
    print("Draft blog for %s:" % blog.day)
    for visit in blog.visits:
        print(
            "  %s  %02d:%02d-%02d:%02d  %s"
            % (visit.poi_name,
               (visit.arrival - DAY0) // 3600, (visit.arrival - DAY0) % 3600 // 60,
               (visit.departure - DAY0) // 3600, (visit.departure - DAY0) % 3600 // 60,
               ("note: %s" % visit.note) if visit.note else "")
        )

    # 2. The user edits: annotate the garden walk, fix the cafe times.
    platform.blog.annotate_visit(blog.blog_id, 1, "long walk among the turtles")
    platform.blog.edit_visit_times(
        blog.blog_id, 0, arrival=DAY0 + 9 * 3600, departure=DAY0 + 10 * 3600
    )

    # 3. Publish to Facebook.  The morning's OAuth token has expired by
    # the evening (1-hour TTL), so the user signs in again first.
    platform.register_user("facebook", "fb_1", "pw", now=float(DAY0 + 85_000))
    published = platform.blog.publish(blog.blog_id, "facebook",
                                      now=float(DAY0 + 86_000))
    print("\nPublished to: %s" % ", ".join(published.published_to))
    print("\nWhat friends see on Facebook:\n")
    print(platform.plugins["facebook"].published[0].text)

    platform.shutdown()


if __name__ == "__main__":
    main()
