"""Trending events: "the k hottest places in the last y hours".

Demonstrates both trending flavors from the paper's introduction:

- the global query ("show me the five hottest places in town
  yesterday night") answered from the HotIn-maintained hotness metric;
- the personalized query ("the three hottest places visited by my x
  specific Foursquare friends the last y hours") answered live from the
  friends' visit streams via coprocessors.

Run with::

    python examples/trending_events.py
"""

from __future__ import annotations

import random

from repro import MoDisSENSE, TrendingQuery
from repro.config import PlatformConfig
from repro.datagen import ReviewGenerator, generate_pois
from repro.geo import BoundingBox
from repro.social import CheckIn, FriendInfo

NOW = 1_000_000
HOUR = 3600


def main() -> None:
    platform = MoDisSENSE(PlatformConfig.small())
    pois = generate_pois(count=800, seed=20)
    platform.load_pois(pois)
    platform.text_processing.train(
        ReviewGenerator(seed=21, capacity=4000).labeled_texts(1500)
    )

    # A Foursquare-style social circle that spent last night out.
    foursquare = platform.plugins["foursquare"]
    foursquare.add_profile(FriendInfo("fq_1", "Night Owl", "pic"))
    for i in range(2, 32):
        foursquare.add_profile(FriendInfo("fq_%d" % i, "Friend %d" % i, "pic"))
        foursquare.add_friendship("fq_1", "fq_%d" % i)

    rng = random.Random(22)
    bars = [p for p in pois if p.category == "bar"]
    hot_bar = bars[0]  # tonight's trending spot
    for i in range(2, 32):
        # Everyone passes through the hot bar within the last 3 hours...
        foursquare.add_checkin(
            CheckIn("fq_%d" % i, hot_bar.poi_id, hot_bar.lat, hot_bar.lon,
                    NOW - rng.randint(0, 3 * HOUR), "amazing night"))
        # ...and visits a random place some time last week.
        other = rng.choice(bars[1:])
        foursquare.add_checkin(
            CheckIn("fq_%d" % i, other.poi_id, other.lat, other.lon,
                    NOW - rng.randint(24, 160) * HOUR, "fine"))

    platform.register_user("foursquare", "fq_1", "pw", now=float(NOW))
    platform.collect(now=NOW)

    friends = tuple(range(2, 32))

    print("Personalized trending, last 3 hours (my 30 Foursquare friends):")
    recent = platform.trending_events(
        TrendingQuery(now=NOW, window_s=3 * HOUR, friend_ids=friends, limit=3)
    )
    for poi in recent.pois:
        print("  %-34s %d visits" % (poi.name, int(poi.score)))

    print("\nPersonalized trending, last 7 days:")
    weekly = platform.trending_events(
        TrendingQuery(now=NOW, window_s=7 * 24 * HOUR, friend_ids=friends,
                      limit=5)
    )
    for poi in weekly.pois:
        print("  %-34s %d visits" % (poi.name, int(poi.score)))

    # Global trending needs the periodic HotIn aggregation first.
    platform.run_hotin(NOW - 24 * HOUR, NOW)
    print("\nGlobal trending (HotIn hotness, last 24h window):")
    global_hot = platform.trending_events(
        TrendingQuery(now=NOW, window_s=24 * HOUR, limit=5)
    )
    for poi in global_hot.pois:
        print("  %-34s hotness %.0f" % (poi.name, poi.score))

    platform.shutdown()


if __name__ == "__main__":
    main()
