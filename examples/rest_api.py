"""Driving the platform through its REST/JSON boundary.

The web, Android and iOS clients talk to MoDisSENSE exclusively through
a JSON-over-REST API (paper Section 2).  This example exercises the
same endpoints with plain dictionaries — register, link, search,
trending, GPS push, blog lifecycle — including how errors come back as
uniform envelopes instead of exceptions.

Run with::

    python examples/rest_api.py
"""

from __future__ import annotations

import json
import random

from repro import MoDisSENSE, RestApi
from repro.config import PlatformConfig
from repro.datagen import ReviewGenerator, generate_pois
from repro.social import CheckIn, FriendInfo


def show(label: str, response: dict) -> None:
    print("%s ->" % label)
    print("  " + json.dumps(response, indent=2).replace("\n", "\n  ")[:600])
    print()


def main() -> None:
    platform = MoDisSENSE(PlatformConfig.small())
    pois = generate_pois(count=500, seed=50)
    platform.load_pois(pois)
    platform.text_processing.train(
        ReviewGenerator(seed=51, capacity=4000).labeled_texts(1200)
    )
    facebook = platform.plugins["facebook"]
    facebook.add_profile(FriendInfo("fb_1", "Nikos", "pic"))
    rng = random.Random(52)
    for i in range(2, 10):
        facebook.add_profile(FriendInfo("fb_%d" % i, "Friend %d" % i, "pic"))
        facebook.add_friendship("fb_1", "fb_%d" % i)
        for _ in range(5):
            poi = rng.choice(pois)
            facebook.add_checkin(
                CheckIn("fb_%d" % i, poi.poi_id, poi.lat, poi.lon,
                        rng.randint(100, 9000), "lovely wonderful place")
            )

    api = RestApi(platform)
    print("Available endpoints:", ", ".join(api.endpoints()), "\n")

    # OAuth-style registration.
    show("POST /register", api.handle("register", {
        "network": "facebook", "network_user_id": "fb_1",
        "password": "pw", "now": 10_000.0,
    }))

    # Wrong password: an error envelope, not a stack trace.
    show("POST /register (bad password)", api.handle("register", {
        "network": "facebook", "network_user_id": "fb_1",
        "password": "oops", "now": 10_000.0,
    }))

    platform.collect(now=10_000)

    show("POST /search (personalized)", api.handle("search", {
        "friend_ids": list(range(2, 10)), "sort_by": "interest", "limit": 3,
    }))

    show("POST /trending", api.handle("trending", {
        "now": 10_000, "window_s": 9_900,
        "friend_ids": list(range(2, 10)), "limit": 3,
    }))

    # Malformed request: schema validation catches it.
    show("POST /search (malformed)", api.handle("search", {
        "friend_ids": "not-a-list",
    }))

    # GPS + blog lifecycle.
    day0 = 1_433_030_400
    points = [
        {"user_id": 1, "lat": 37.98, "lon": 23.73,
         "timestamp": day0 + 9 * 3600 + i * 240}
        for i in range(10)
    ]
    show("POST /push_gps", api.handle("push_gps", {"points": points}))
    blog = api.handle("generate_blog", {
        "user_id": 1, "day_start": day0, "day_end": day0 + 86_400,
    })
    show("POST /generate_blog", blog)
    blog_id = blog["data"]["blog_id"]
    show("POST /update_blog (annotate)", api.handle("update_blog", {
        "blog_id": blog_id, "visit_index": 0, "note": "morning coffee spot",
    }))
    show("POST /publish_blog", api.handle("publish_blog", {
        "blog_id": blog_id, "network": "facebook", "now": 20_000.0,
    }))

    platform.shutdown()


if __name__ == "__main__":
    main()
