"""Quickstart: stand up a MoDisSENSE platform and run the full loop.

Covers the complete lifecycle in one script: load POIs, train the
sentiment classifier, register a user with social credentials (OAuth),
collect check-ins from the simulated social network, and run a
personalized search for restaurants the user's friends love.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import MoDisSENSE, SearchQuery
from repro.config import PlatformConfig
from repro.datagen import ReviewGenerator, generate_pois
from repro.geo import BoundingBox
from repro.social import CheckIn, FriendInfo


def main() -> None:
    # A small deployment: 4 simulated nodes, 8 regions per table.
    platform = MoDisSENSE(PlatformConfig.small())

    # 1. Load the POI catalog (synthetic OpenStreetMap Greece extract).
    pois = generate_pois(count=1000, seed=1)
    platform.load_pois(pois)
    print("Loaded %d POIs" % platform.poi_repository.count())

    # 2. Train the sentiment classifier on a Tripadvisor-style corpus.
    corpus = ReviewGenerator(seed=2, capacity=5000).labeled_texts(2000)
    report = platform.text_processing.train(corpus)
    print(
        "Classifier trained: %.1f%% training accuracy, %d features"
        % (100 * report.training_accuracy, report.vocabulary_size)
    )

    # 3. Populate the simulated Facebook with our user and friends.
    facebook = platform.plugins["facebook"]
    facebook.add_profile(FriendInfo("fb_1", "Maria", "https://img/1.jpg"))
    for i in range(2, 12):
        facebook.add_profile(
            FriendInfo("fb_%d" % i, "Friend %d" % i, "https://img/%d.jpg" % i)
        )
        facebook.add_friendship("fb_1", "fb_%d" % i)

    # Friends check in around Athens and leave opinions.
    rng = random.Random(3)
    athens = BoundingBox(37.9, 23.6, 38.1, 23.85)
    athens_pois = [p for p in pois if athens.contains_coords(p.lat, p.lon)]
    for i in range(2, 12):
        for _ in range(8):
            poi = rng.choice(athens_pois)
            comment = (
                "excellent delicious wonderful evening"
                if rng.random() < 0.7
                else "overpriced bland disappointing"
            )
            facebook.add_checkin(
                CheckIn("fb_%d" % i, poi.poi_id, poi.lat, poi.lon,
                        rng.randint(1_000, 9_999), comment)
            )

    # 4. Register via OAuth and collect social data.
    user = platform.register_user("facebook", "fb_1", "pw", now=10_000.0)
    print("Registered %s (user_id=%d)" % (user.display_name, user.user_id))
    collected = platform.collect(now=10_000)
    print(
        "Collected %d check-ins, classified %d comments"
        % (collected.checkins_ingested, collected.comments_classified)
    )

    # 5. Personalized search: top restaurants my friends like in Athens.
    result = platform.search(
        SearchQuery(
            bbox=athens,
            keywords=("food", "restaurant", "dinner"),
            friend_ids=tuple(range(2, 12)),
            sort_by="interest",
            limit=5,
        )
    )
    print("\nTop picks from your friends (simulated latency %.1f ms):"
          % result.latency_ms)
    for rank, poi in enumerate(result.pois, start=1):
        print(
            "  %d. %-30s score %.2f  (%d friend visits)"
            % (rank, poi.name, poi.score, poi.visit_count)
        )

    platform.shutdown()


if __name__ == "__main__":
    main()
