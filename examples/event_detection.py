"""Automatic POI / trending-event discovery from GPS traces.

A crowd gathers at places the platform does not know about (concerts,
spontaneous street events); the Event Detection Module clusters the raw
GPS trace stream with MR-DBSCAN, filters activity near already-known
POIs, and registers each dense cluster as a new auto-detected POI that
immediately becomes searchable.

Run with::

    python examples/event_detection.py
"""

from __future__ import annotations

from repro import MoDisSENSE, SearchQuery
from repro.config import PlatformConfig
from repro.datagen import generate_pois, generate_traces


def main() -> None:
    platform = MoDisSENSE(PlatformConfig.small())
    pois = generate_pois(count=600, seed=30)
    platform.load_pois(pois)
    print("Known POIs before detection: %d" % platform.poi_repository.count())

    # Tonight's trace stream: 5 crowd gatherings, plus routine activity
    # near known POIs and commuting noise.
    scenario = generate_traces(
        user_ids=list(range(1, 40)),
        known_pois=pois,
        num_hotspots=5,
        points_per_hotspot=150,
        near_poi_points=300,
        background_points=500,
        seed=31,
    )
    platform.push_gps(scenario.points)
    print(
        "Pushed %d GPS points (%d around known POIs, %d background)"
        % (len(scenario.points), scenario.near_known_poi_count,
           scenario.background_count)
    )

    report = platform.detect_events(since=0)
    print(
        "\nDetection run: %d traces scanned, %d after known-POI filter,"
        " %d clusters"
        % (report.traces_scanned, report.traces_after_filter,
           report.clusters_found)
    )
    for poi in report.pois_created:
        nearest_truth = min(
            poi.location.distance_m(h) for h in scenario.hotspot_centers
        )
        print(
            "  registered %-22s at (%.4f, %.4f), %3.0f m from a true"
            " hotspot, crowd size %d"
            % (poi.name, poi.lat, poi.lon, nearest_truth, int(poi.hotness))
        )

    # The detected events are immediately searchable.
    result = platform.search(
        SearchQuery(keywords=("event",), sort_by="hotness", limit=5)
    )
    print("\nSearch 'event' now returns:")
    for poi in result.pois:
        print("  %-26s hotness %.0f" % (poi.name, poi.score))

    platform.shutdown()


if __name__ == "__main__":
    main()
