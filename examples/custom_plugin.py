"""Extending MoDisSENSE with a new social-network plugin.

The paper: "MoDisSENSE currently supports Facebook, Twitter and
Foursquare, but it can be extended to more platforms with the
appropriate plugin implementation."  This example writes that plugin —
an Instagram-flavored network whose API exposes *geotagged photos*
rather than check-ins — and shows the platform ingesting it unchanged:
the plugin adapts photos into the check-in shape the Data Collection
Module understands.

Run with::

    python examples/custom_plugin.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import MoDisSENSE, SearchQuery
from repro.config import PlatformConfig
from repro.datagen import ReviewGenerator, generate_pois
from repro.social import (
    CheckIn,
    FriendInfo,
    SimulatedNetwork,
    SocialNetworkPlugin,
)


@dataclass(frozen=True)
class GeoPhoto:
    """What the imaginary Instagram API returns."""

    owner: str
    poi_id: int
    lat: float
    lon: float
    taken_at: int
    caption: str


class InstagramPlugin(SimulatedNetwork):
    """A plugin for a photo-first network.

    It reuses :class:`SimulatedNetwork` for profiles/friends/OAuth and
    adds a photo store; ``get_checkins`` adapts photos to the platform's
    check-in shape, so the rest of MoDisSENSE needs zero changes.
    """

    def __init__(self) -> None:
        super().__init__("instagram")
        self._photos: Dict[str, List[GeoPhoto]] = {}

    def add_photo(self, photo: GeoPhoto) -> None:
        self._photos.setdefault(photo.owner, []).append(photo)

    def get_checkins(self, token, user_id, since, until):
        self._check_visibility(token, user_id)
        return [
            CheckIn(
                network_user_id=photo.owner,
                poi_id=photo.poi_id,
                lat=photo.lat,
                lon=photo.lon,
                timestamp=photo.taken_at,
                comment=photo.caption,
            )
            for photo in self._photos.get(user_id, [])
            if since <= photo.taken_at < until
        ]


def main() -> None:
    instagram = InstagramPlugin()
    platform = MoDisSENSE(
        PlatformConfig.small(),
        plugins={"instagram": instagram},
    )
    pois = generate_pois(count=300, seed=60)
    platform.load_pois(pois)
    platform.text_processing.train(
        ReviewGenerator(seed=61, capacity=4000).labeled_texts(1200)
    )

    instagram.add_profile(FriendInfo("ig_1", "Photographer", "pic"))
    for i in range(2, 8):
        instagram.add_profile(FriendInfo("ig_%d" % i, "Friend %d" % i, "pic"))
        instagram.add_friendship("ig_1", "ig_%d" % i)
        for k in range(4):
            poi = pois[(i * 7 + k) % len(pois)]
            instagram.add_photo(
                GeoPhoto(
                    owner="ig_%d" % i,
                    poi_id=poi.poi_id,
                    lat=poi.lat,
                    lon=poi.lon,
                    taken_at=1_000 + i * 10 + k,
                    caption="gorgeous stunning view, wonderful light",
                )
            )

    user = platform.register_user("instagram", "ig_1", "pw", now=10_000.0)
    print("Registered %s via the custom Instagram plugin" % user.display_name)
    report = platform.collect(now=10_000)
    print(
        "Collected %d geotagged photos as check-ins; classified %d captions"
        % (report.checkins_ingested, report.comments_classified)
    )

    result = platform.search(
        SearchQuery(friend_ids=tuple(range(2, 8)), sort_by="hotness", limit=5)
    )
    print("\nPlaces my Instagram friends photograph most:")
    for poi in result.pois:
        print("  %-34s %d photos" % (poi.name, poi.visit_count))

    platform.shutdown()


if __name__ == "__main__":
    main()
