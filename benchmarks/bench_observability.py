"""Observability overhead and SLO gates — telemetry must stay cheap.

The telemetry pipeline (time-series scrapes, wide events, exemplars,
the continuous profiler) defaults to ON, so this bench is the guard
that keeps that default honest:

- ``test_telemetry_overhead_under_limit`` replays the 6000-friend
  personalized query through two query modules over the *same*
  repositories — one with the full observability stack (tracer, wide
  events, metrics with exemplars, profiler sampling, per-rep scrapes),
  one with all of it off — and fails if the instrumented medians exceed
  the bare ones by more than ``REPRO_OBS_OVERHEAD_PCT`` (default 10)
  percent.  It also asserts the two paths return identical answers.

- ``test_profiler_attribution_mixed_load`` runs a mixed read+ingest
  workload through the REST layer with the profiler on and requires
  >= ``REPRO_OBS_ATTRIBUTION_MIN`` (default 0.9) of wall-clock samples
  to be attributed to a registered component.

- ``test_ingest_freshness_slo_green_under_load`` drives the PR-5
  streaming-ingest load with telemetry scraping each simulated second
  and requires the ``ingest_freshness`` SLO to stay healthy.

Numbers land in ``benchmarks/results/BENCH_observability.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro import RestApi
from repro.config import (
    ClusterConfig,
    IngestConfig,
    PlatformConfig,
    TelemetryConfig,
)
from repro.core import MoDisSENSE, SearchQuery
from repro.core.modules.query_answering import QueryAnsweringModule
from repro.core.monitoring import InstrumentedQueryAnswering, PlatformMetrics
from repro.core.telemetry import (
    ContinuousProfiler,
    TimeSeriesStore,
    WideEventLog,
)
from repro.core.repositories.visits import VisitStruct
from repro.core.tracing import NULL_TRACER, Tracer

from ._report import RESULTS_DIR, register_table
from ._workload import friend_sample

#: The acceptance query: the paper's worst-case smoke-scale fan-out.
N_QUERY_FRIENDS = int(os.environ.get("REPRO_BENCH_OBS_FRIENDS", 6_000))
REPETITIONS = max(5, int(os.environ.get("REPRO_BENCH_REPETITIONS", 10)))
OVERHEAD_LIMIT_PCT = float(os.environ.get("REPRO_OBS_OVERHEAD_PCT", 10.0))
ATTRIBUTION_MIN = float(os.environ.get("REPRO_OBS_ATTRIBUTION_MIN", 0.9))

BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_observability.json")


def _record_bench(section: str, payload: dict) -> None:
    """Merge one bench's numbers into ``BENCH_observability.json``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as f:
            data = json.load(f)
    data[section] = payload
    with open(BENCH_JSON, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")


def _wall_ms(qa, query):
    t0 = time.perf_counter()
    result = qa.search(query)
    return (time.perf_counter() - t0) * 1e3, result


def test_telemetry_overhead_under_limit(bench_platform, benchmark):
    # Two modules over the same repositories.  The instrumented one
    # carries the full per-query observability cost: span trees, the
    # wide-event emission, metrics (with exemplars), and — while its
    # reps run — the wall-clock profiler plus a scrape per rep (in
    # production scrapes run at 1 Hz, so one per rep overstates them).
    metrics = PlatformMetrics()
    store = TimeSeriesStore()
    events = WideEventLog()
    # The shipped default sampling rate — the gate is about what
    # telemetry costs in the configuration users actually run.
    profiler = ContinuousProfiler(
        interval_s=TelemetryConfig().profiler_interval_s
    )
    observed_qa = InstrumentedQueryAnswering(
        QueryAnsweringModule(
            bench_platform.poi_repository,
            bench_platform.visits_repository,
            tracer=Tracer(max_traces=max(64, REPETITIONS + 2)),
            metrics=metrics,
            event_log=events,
        ),
        metrics=metrics,
    )
    bare_qa = QueryAnsweringModule(
        bench_platform.poi_repository,
        bench_platform.visits_repository,
        tracer=NULL_TRACER,
    )
    query = SearchQuery(
        friend_ids=friend_sample(N_QUERY_FRIENDS, seed=4000),
        sort_by="interest",
        limit=10,
    )

    def measure():
        # Warm both paths (thread-pool spin-up, page cache).
        bare_qa.search(query)
        observed_qa.search(query)
        bare, observed = [], []
        for rep in range(REPETITIONS):
            ms_off, r_off = _wall_ms(bare_qa, query)
            bare.append(ms_off)
            profiler.start()
            try:
                ms_on, r_on = _wall_ms(observed_qa, query)
                store.scrape(metrics.scrape_values(), float(rep))
            finally:
                profiler.stop()
            observed.append(ms_on)
            # Identical answers, instrumented or not.
            assert [
                (p.poi_id, p.score, p.visit_count) for p in r_on.pois
            ] == [(p.poi_id, p.score, p.visit_count) for p in r_off.pois]
            assert r_on.records_scanned == r_off.records_scanned
        return statistics.median(bare), statistics.median(observed)

    off_ms, on_ms = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead_pct = (on_ms - off_ms) / off_ms * 100.0 if off_ms else 0.0

    register_table(
        "Telemetry overhead: %d-friend query, full stack off vs on"
        " (median of %d reps)" % (N_QUERY_FRIENDS, REPETITIONS),
        ["friends", "bare (ms)", "instrumented (ms)", "overhead"],
        [[N_QUERY_FRIENDS, "%.2f" % off_ms, "%.2f" % on_ms,
          "%+.1f%%" % overhead_pct]],
    )
    _record_bench(
        "overhead",
        {
            "friends": N_QUERY_FRIENDS,
            "repetitions": REPETITIONS,
            "bare_ms": off_ms,
            "instrumented_ms": on_ms,
            "overhead_pct": overhead_pct,
            "limit_pct": OVERHEAD_LIMIT_PCT,
            "scrapes": store.scrapes,
            "events_emitted": events.stats()["emitted"],
        },
    )

    # The pipeline actually observed the workload it was charged for.
    assert store.scrapes == REPETITIONS
    assert "query.personalized:p99" in store.names()
    assert events.stats()["emitted"] >= REPETITIONS
    exemplars = metrics.histogram("query.personalized").exemplars()
    assert exemplars and all(e["trace_id"] is not None for e in exemplars)

    assert overhead_pct <= OVERHEAD_LIMIT_PCT, (
        "telemetry overhead %.1f%% exceeds %.1f%% at %d friends"
        " (bare %.2fms, instrumented %.2fms)"
        % (overhead_pct, OVERHEAD_LIMIT_PCT, N_QUERY_FRIENDS, off_ms, on_ms)
    )


def _fresh_platform(**overrides) -> MoDisSENSE:
    config = PlatformConfig(
        cluster=ClusterConfig(num_nodes=4, regions_per_table=8),
        **overrides,
    )
    return MoDisSENSE(config)


def _visit_structs(count: int, seed: int):
    """``count`` ingest-ready visits over 400 users / 200 POIs."""
    import random

    rng = random.Random(seed)
    return [
        VisitStruct(
            user_id=rng.randint(1, 400),
            poi_id=rng.randint(1, 200),
            timestamp=rng.randint(1, 1_000_000),
            grade=rng.random(),
            poi_name="Some Place",
            lat=37.9,
            lon=23.7,
            keywords=("food",),
        )
        for _ in range(count)
    ]


def test_profiler_attribution_mixed_load(benchmark):
    """>= 90% of profiler samples carry a component under mixed load."""
    platform = _fresh_platform(
        ingest=IngestConfig(enabled=True, refresh_interval_s=0.0),
        telemetry=TelemetryConfig(
            profiler_enabled=True, profiler_interval_s=0.002
        ),
    )
    rest = RestApi(platform)
    try:
        visits = _visit_structs(2_000, seed=11)

        def mixed_load():
            # Interleave ingest batches (applier threads, registered as
            # "ingest") with REST reads (handler pushes "rest"; fan-out
            # pool registered as "fanout").
            for i, visit in enumerate(visits):
                platform.ingest_visit(visit)
                if i % 50 == 0:
                    rest.handle(
                        "search",
                        {"friend_ids": list(range(1, 200)),
                         "sort_by": "hotness"},
                    )
            platform.ingest.drain(timeout_s=30.0)
            for _ in range(10):
                rest.handle(
                    "search",
                    {"friend_ids": list(range(1, 400)),
                     "sort_by": "hotness"},
                )
            return rest.handle("admin_profile", {})

        out = benchmark.pedantic(mixed_load, rounds=1, iterations=1)
        assert out["status"] == "ok"
        stats = out["data"]["stats"]
        assert stats["samples"] > 0, "profiler took no samples"
        _record_bench(
            "profiler_attribution",
            {
                "samples": stats["samples"],
                "attributed_fraction": stats["attributed_fraction"],
                "by_component": stats["by_component"],
                "minimum": ATTRIBUTION_MIN,
            },
        )
        register_table(
            "Profiler attribution under mixed read+ingest load",
            ["samples", "attributed", "components"],
            [[stats["samples"],
              "%.1f%%" % (stats["attributed_fraction"] * 100.0),
              ", ".join(sorted(stats["by_component"]))]],
        )
        assert stats["attributed_fraction"] >= ATTRIBUTION_MIN, (
            "only %.1f%% of %d samples attributed (by_component=%r)"
            % (stats["attributed_fraction"] * 100.0, stats["samples"],
               stats["by_component"])
        )
    finally:
        platform.shutdown()


def test_ingest_freshness_slo_green_under_load(benchmark):
    """The ingest-freshness SLO stays healthy at PR-5 streaming load."""
    platform = _fresh_platform(
        ingest=IngestConfig(enabled=True, refresh_interval_s=0.0),
        telemetry=TelemetryConfig(profiler_enabled=False),
    )
    try:
        visits = _visit_structs(3_000, seed=12)

        def sustained_ingest():
            tick = 0
            for start in range(0, len(visits), 100):
                for visit in visits[start:start + 100]:
                    platform.ingest_visit(visit)
                # The appliers drain the burst; freshness is measured
                # at the scrape, exactly as the scheduler would.
                platform.ingest.drain(timeout_s=30.0)
                tick += 1
                platform.telemetry.tick(float(tick))
            return platform.telemetry.health()

        health = benchmark.pedantic(sustained_ingest, rounds=1, iterations=1)
        by_name = {s["name"]: s for s in health["slos"]}
        freshness = by_name["ingest_freshness"]
        _record_bench(
            "ingest_freshness_slo",
            {
                "visits": len(visits),
                "state": freshness["state"],
                "fast_burn": freshness["fast_burn"],
                "budget_remaining": freshness["budget_remaining"],
                "overall_state": health["state"],
            },
        )
        assert freshness["state"] == "healthy", freshness
        stats = platform.ingest.stats()
        assert stats["counters"]["applied"] == len(visits)
    finally:
        platform.shutdown()
