"""Benchmark report registry.

Each bench registers the table/series it reproduces; the conftest's
``pytest_terminal_summary`` hook prints everything at the end of the run
(so the paper-shaped rows always land in ``bench_output.txt``), and a
copy is written under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import List, Sequence

_TABLES: List[tuple] = []

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def register_table(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Queue a table for the end-of-run summary and persist it."""
    _TABLES.append((title, list(header), [list(r) for r in rows]))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = "".join(c if c.isalnum() else "_" for c in title.lower())[:60]
    with open(os.path.join(RESULTS_DIR, slug + ".txt"), "w") as f:
        f.write(format_table(title, header, rows))


def format_table(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> str:
    cells = [list(map(str, header))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    lines = ["", "=== %s ===" % title]
    for i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    lines.append("")
    return "\n".join(lines)


def drain_tables() -> List[tuple]:
    tables = list(_TABLES)
    _TABLES.clear()
    return tables
