"""Web-server tier sizing (paper Section 3.1).

"We identified that two 4-cores web servers with 4 GB of RAM each are
more than enough to avoid such bottlenecks."  This bench sweeps the web
farm size under Figure-3-style concurrency and reproduces the
diminishing-returns point at two servers, plus a node-failure drill on
the HBase tier.
"""

from __future__ import annotations

import pytest

from repro.cluster import MergeWork, WebServerFarm

from ._report import register_table
from ._workload import (
    friend_sample,
    region_records_for_friends,
    simulate_query_ms,
)


def test_web_server_sizing(bench_platform, benchmark):
    """Mean merge completion for 50 concurrent 6000-friend queries as
    the web farm grows."""
    work_profile = region_records_for_friends(
        bench_platform, friend_sample(6000, seed=91)
    )
    items_per_query = sum(results for _recs, results in work_profile.values())

    def sweep():
        out = {}
        for servers in (1, 2, 3, 4):
            farm = WebServerFarm(num_servers=servers, cores_per_server=4)
            work = [
                MergeWork(query_id=i, items=items_per_query, ready_at=0.0)
                for i in range(50)
            ]
            finishes = farm.schedule_merges(work)
            out[servers] = sum(finishes) / len(finishes)
        return out

    means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_table(
        "Web tier sizing: mean merge completion (s), 50 concurrent"
        " queries x %d items" % items_per_query,
        ["web servers", "mean completion (s)"],
        [[s, "%.3f" % t] for s, t in sorted(means.items())],
    )
    # Two servers help; beyond two, returns diminish (the paper's
    # "more than enough" point).
    assert means[2] < means[1]
    assert (means[2] - means[4]) < (means[1] - means[2])


def test_node_failure_drill(bench_platform, benchmark):
    """Latency of the same query as the 16-node cluster loses nodes.

    There is no paper figure for this, but fault tolerance is the
    stated reason for choosing HBase; the drill records the degradation
    curve and that answers stay exact.
    """
    ids = friend_sample(4000, seed=92)
    work = region_records_for_friends(bench_platform, ids)

    def sweep():
        from repro.cluster import ClusterSimulation, Task
        from repro.config import ClusterConfig
        from ._workload import (
            COST_PER_RECORD_US,
            MERGE_COST_PER_ITEM_US,
            REGIONS,
        )

        sim = ClusterSimulation(
            ClusterConfig(
                num_nodes=16,
                regions_per_table=REGIONS,
                cost_per_record_us=COST_PER_RECORD_US,
                merge_cost_per_item_us=MERGE_COST_PER_ITEM_US,
            )
        )
        sim.place_regions(sorted(work))
        tasks = [
            Task(region_id=r, records_scanned=w[0], results_returned=w[1])
            for r, w in sorted(work.items())
        ]
        out = {}
        out[0] = sim.run_query(list(tasks)).latency_ms
        failed = 0
        for failures in (1, 2, 4, 8):
            while failed < failures:
                sim.fail_node(failed)
                failed += 1
            out[failures] = sim.run_query(list(tasks)).latency_ms
        return out

    latencies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_table(
        "Fault drill: 4000-friend query latency vs failed nodes"
        " (16-node cluster)",
        ["failed nodes", "latency (ms)"],
        [[k, "%.0f" % v] for k, v in sorted(latencies.items())],
    )
    values = [latencies[k] for k in sorted(latencies)]
    assert all(b >= a for a, b in zip(values, values[1:]))
    # Losing half the cluster roughly doubles the latency.
    assert latencies[8] > 1.7 * latencies[0]
