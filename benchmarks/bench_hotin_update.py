"""HotIn Update — the periodic MapReduce aggregation (paper Section 2.2).

Measures the job over the benchmark visit table for several window
lengths T and verifies the aggregates against a direct computation.
"""

from __future__ import annotations

import time

import pytest

from ._report import register_table

WINDOWS = (
    ("1 day", 86_400),
    ("1 week", 7 * 86_400),
    ("1 month", 30 * 86_400),
)

#: The benchmark visit timestamps span this range (see datagen.visits).
T_END = 1_430_000_000


def test_hotin_update_windows(bench_platform, benchmark):
    def sweep():
        rows = []
        for label, seconds in WINDOWS:
            t0 = time.perf_counter()
            report = bench_platform.run_hotin(T_END - seconds, T_END)
            wall = time.perf_counter() - t0
            rows.append((label, report, wall))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_table(
        "HotIn update: aggregation window sweep",
        ["window T", "visits scanned", "POIs updated", "wall time (s)"],
        [
            [label, report.visits_scanned, report.pois_updated, "%.2f" % wall]
            for label, report, wall in rows
        ],
    )
    # Longer windows see more visits and touch more POIs.
    scanned = [report.visits_scanned for _l, report, _w in rows]
    assert scanned[0] < scanned[1] < scanned[2]


def test_hotin_aggregates_are_exact(bench_platform, benchmark):
    """The MapReduce output equals a direct single-pass aggregation."""
    since, until = T_END - 7 * 86_400, T_END

    def run():
        return bench_platform.run_hotin(since, until)

    benchmark.pedantic(run, rounds=1, iterations=1)

    expected = {}
    for visit in bench_platform.visits_repository.all_visits(since, until):
        count, total = expected.get(visit.poi_id, (0, 0.0))
        expected[visit.poi_id] = (count + 1, total + visit.grade)

    import random

    rng = random.Random(9)
    sample = rng.sample(sorted(expected), min(200, len(expected)))
    for poi_id in sample:
        count, total = expected[poi_id]
        poi = bench_platform.poi_repository.get(poi_id)
        assert poi is not None
        assert poi.hotness == pytest.approx(float(count))
        assert poi.interest == pytest.approx(total / count)
