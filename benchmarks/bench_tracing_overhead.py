"""Tracing overhead — the span layer must be invisible in Figure 2.

Tracing defaults to ON (``TracingConfig.enabled``), so this bench is
the guard that keeps that default honest: it replays the Figure-2 smoke
workload through two query modules over the *same* repositories — one
with tracing enabled, one with the null tracer — and fails if the
traced medians exceed the untraced ones by more than
``REPRO_TRACE_OVERHEAD_PCT`` (default 10) percent on the largest friend
count.  It also asserts the two paths return identical answers, the
"byte-identical results" half of the tracing contract.

Repetitions alternate traced/untraced so ambient machine noise (turbo
states, page cache) hits both sides equally.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.core import SearchQuery
from repro.core.modules.query_answering import QueryAnsweringModule
from repro.core.tracing import NULL_TRACER, Tracer

from ._report import register_table
from ._workload import NUM_USERS, friend_sample

#: Same axis as Figure 2 (truncated at smoke scale).
FRIEND_COUNTS = tuple(
    f for f in (500, 2000, 3500, 5000, 6500, 8000, 9500) if f < NUM_USERS
) or (NUM_USERS // 4, NUM_USERS // 2)
REPETITIONS = max(5, int(os.environ.get("REPRO_BENCH_REPETITIONS", 10)))
OVERHEAD_LIMIT_PCT = float(os.environ.get("REPRO_TRACE_OVERHEAD_PCT", 10.0))


def _wall_ms(qa, query):
    t0 = time.perf_counter()
    result = qa.search(query)
    return (time.perf_counter() - t0) * 1e3, result


def test_tracing_overhead_under_limit(bench_platform, benchmark):
    # Two modules over the same repositories: the only difference is the
    # tracer.  A big ring buffer keeps eviction out of the measurement.
    traced_qa = QueryAnsweringModule(
        bench_platform.poi_repository,
        bench_platform.visits_repository,
        tracer=Tracer(max_traces=max(64, REPETITIONS * len(FRIEND_COUNTS))),
    )
    untraced_qa = QueryAnsweringModule(
        bench_platform.poi_repository,
        bench_platform.visits_repository,
        tracer=NULL_TRACER,
    )

    def measure():
        series = {}
        for friends in FRIEND_COUNTS:
            query = SearchQuery(
                friend_ids=friend_sample(friends, seed=4000 + friends),
                sort_by="interest",
                limit=10,
            )
            # Warm both paths (thread-pool spin-up, page cache).
            untraced_qa.search(query)
            traced_qa.search(query)
            traced, untraced = [], []
            for _ in range(REPETITIONS):
                ms_off, r_off = _wall_ms(untraced_qa, query)
                ms_on, r_on = _wall_ms(traced_qa, query)
                untraced.append(ms_off)
                traced.append(ms_on)
                # Identical answers, traced or not.
                assert [
                    (p.poi_id, p.score, p.visit_count) for p in r_on.pois
                ] == [(p.poi_id, p.score, p.visit_count) for p in r_off.pois]
                assert r_on.latency_ms == r_off.latency_ms
                assert r_on.records_scanned == r_off.records_scanned
            series[friends] = (
                statistics.median(untraced),
                statistics.median(traced),
            )
        return series

    series = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for friends in FRIEND_COUNTS:
        off_ms, on_ms = series[friends]
        overhead = (on_ms - off_ms) / off_ms * 100.0 if off_ms else 0.0
        rows.append([
            friends, "%.2f" % off_ms, "%.2f" % on_ms, "%+.1f%%" % overhead,
        ])
    register_table(
        "Tracing overhead: wall-clock per query, tracing off vs on"
        " (median of %d reps)" % REPETITIONS,
        ["friends", "untraced (ms)", "traced (ms)", "overhead"],
        rows,
    )
    benchmark.extra_info["series"] = {
        str(f): {"untraced_ms": off, "traced_ms": on}
        for f, (off, on) in series.items()
    }

    # Every traced query produced a retrievable span tree.
    last = traced_qa.tracer.last_trace()
    assert last is not None and last["root"]["name"] == "query.personalized"
    assert len(last["stages"]) >= 4

    # The gate: on the largest friend count (the paper's worst case and
    # the most span-heavy fan-out) the overhead stays under the limit.
    largest = FRIEND_COUNTS[-1]
    off_ms, on_ms = series[largest]
    overhead_pct = (on_ms - off_ms) / off_ms * 100.0
    assert overhead_pct <= OVERHEAD_LIMIT_PCT, (
        "tracing overhead %.1f%% exceeds %.1f%% at %d friends"
        " (untraced %.2fms, traced %.2fms)"
        % (overhead_pct, OVERHEAD_LIMIT_PCT, largest, off_ms, on_ms)
    )
