"""Shared benchmark workload: the paper's Section 3.1 dataset, scaled.

Paper scale: 8500 POIs, 150k users, visits/user ~ Normal(170, 101),
clusters of 4/8/16 dual-core nodes.

Bench scale (documented in EXPERIMENTS.md): the full 150k x 170 ~ 25M
visit structs do not fit a single-process test run, so we keep the POI
count, keep the *friend-count axis* (500..9500), and scale the per-user
visit volume by ``VISIT_SCALE = 1/10`` (Normal(17, 10.1)) while scaling
the simulated per-record cost by 10x.  Simulated latencies are therefore
directly comparable with the paper's milliseconds: each friend still
contributes ~170 "paper visits" worth of coprocessor work.

The expensive part — real coprocessor scans over real HBase regions —
runs once per friend set; the cluster-size sweep replays the captured
per-region record counts through fresh :class:`ClusterSimulation`
instances, which is exactly how the timing layer is factored.
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Sequence

from repro.cluster import ClusterSimulation, Task
from repro.config import ClusterConfig, PlatformConfig
from repro.core import MoDisSENSE, SearchQuery
from repro.datagen import generate_pois, generate_visits

# ---- scale knobs -----------------------------------------------------------
# REPRO_BENCH_USERS / REPRO_BENCH_POIS / REPRO_BENCH_REPETITIONS shrink the
# workload for CI smoke runs; defaults reproduce the documented bench scale.

NUM_POIS = int(os.environ.get("REPRO_BENCH_POIS", 8500))
NUM_USERS = int(
    os.environ.get("REPRO_BENCH_USERS", 10_500)
)  # default: enough for the paper's 9500-friend sweep
VISIT_SCALE = 10  # visits generated at 1/10 volume...
VISIT_MEAN = 17.0
VISIT_STD = 10.1
#: ...and per-record cost scaled 10x so simulated ms match paper scale.
#: The web tier's merge cost stays at its paper-scale per-item value: it
#: applies to per-POI partial aggregates, whose count does not shrink
#: linearly with visit volume.
COST_PER_RECORD_US = 17.5 * VISIT_SCALE
MERGE_COST_PER_ITEM_US = 1.5

PAPER_CLUSTERS = (4, 8, 16)
REGIONS = 32

_cache: Dict[str, object] = {}


def build_platform() -> MoDisSENSE:
    """The benchmark platform: 16-node cluster, 32-region visits table,
    POIs + visits ingested.  Built once per process."""
    if "platform" in _cache:
        return _cache["platform"]  # type: ignore[return-value]
    config = PlatformConfig(
        cluster=ClusterConfig(
            num_nodes=16,
            regions_per_table=REGIONS,
            cost_per_record_us=COST_PER_RECORD_US,
            merge_cost_per_item_us=MERGE_COST_PER_ITEM_US,
        )
    )
    platform = MoDisSENSE(config)
    pois = generate_pois(count=NUM_POIS, seed=2015)
    platform.load_pois(pois)
    platform.load_visits(
        generate_visits(
            range(1, NUM_USERS + 1),
            pois,
            seed=2015,
            mean=VISIT_MEAN,
            std=VISIT_STD,
        )
    )
    _cache["platform"] = platform
    _cache["pois"] = pois
    return platform


def friend_sample(count: int, seed: int = 7) -> tuple:
    """``count`` distinct friend ids, uniformly sampled (paper: "friends
    for each query are picked randomly in a uniform manner")."""
    rng = random.Random(seed)
    return tuple(rng.sample(range(1, NUM_USERS + 1), count))


def region_records_for_friends(platform: MoDisSENSE, friend_ids: tuple):
    """Per-region (records scanned, results returned) for one
    personalized query, measured by executing the real coprocessor
    endpoint through the routed (friend->region) fan-out.
    Returns ``{region_id: (records, results)}``."""
    from repro.core import SearchQuery

    qa = platform.query_answering
    routed = qa._route_query(SearchQuery(friend_ids=friend_ids))
    call = platform.visits_repository.cluster.coprocessor_exec_routed(
        platform.visits_repository.table.name,
        qa._coprocessor,
        [routed],
        route_items=[len(friend_ids)],
    )[0]
    return {
        region: (records, call.per_region_results.get(region, 0))
        for region, records in call.per_region_records.items()
    }


def simulate_query_ms(
    per_region_work: Dict[int, tuple],
    num_nodes: int,
    concurrency: int = 1,
    route_items: int = 0,
) -> List[float]:
    """Replay captured region work (``{region: (records, results)}``)
    on an ``num_nodes`` cluster; returns per-query simulated latencies
    in ms.  ``route_items`` charges the client-side friend->region
    routing term, keeping replayed latencies honest about the routed
    fan-out's bookkeeping."""
    sim = ClusterSimulation(
        ClusterConfig(
            num_nodes=num_nodes,
            regions_per_table=REGIONS,
            cost_per_record_us=COST_PER_RECORD_US,
            merge_cost_per_item_us=MERGE_COST_PER_ITEM_US,
        )
    )
    sim.place_regions(sorted(per_region_work))
    tasks = [
        Task(region_id=region, records_scanned=work[0],
             results_returned=work[1])
        for region, work in sorted(per_region_work.items())
    ]
    setup = sim.cost_model.routing_cost_s(route_items)
    timelines = sim.run_queries(
        [list(tasks) for _ in range(concurrency)],
        client_setup_s=[setup] * concurrency,
    )
    return [t.latency_ms for t in timelines]
