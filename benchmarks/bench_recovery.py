"""Self-healing drills: measured MTTR and zero-fault supervisor cost.

Two numbers back the supervisor's claims:

- **MTTR** — a seeded node kill heals through the heartbeat loop alone
  (no test-harness ``recover_node``); the recovery record's measured
  MTTR must stay within ``REPRO_RECOVERY_MTTR_FACTOR`` (default 2x) of
  the lease timeout.  Detection latency is honest: the scheduler
  advances in sub-lease heartbeat steps, so MTTR includes the full
  lease-expiry wait plus WAL replay.
- **Zero-fault overhead** — with no faults injected, a supervised
  platform routes every region write through a per-server WAL handle
  and every query past a liveness check.  Interleaved A/B medians of
  the same workload with the supervisor on vs off must differ by at
  most ``REPRO_RECOVERY_OVERHEAD_MAX`` (default 10%) — the CI
  ``recovery-smoke`` gate.
"""

from __future__ import annotations

import json
import os
import statistics
import time
import warnings

from repro.config import (
    ClusterConfig,
    FaultsConfig,
    PlatformConfig,
    SupervisorConfig,
)
from repro.core import MoDisSENSE, SearchQuery
from repro.core.repositories.poi import POI
from repro.core.repositories.visits import VisitStruct
from repro.core.scheduler import build_platform_scheduler

from ._report import RESULTS_DIR, register_table

#: Users whose visits seed each drill platform.
N_USERS = int(os.environ.get("REPRO_BENCH_RECOVERY_USERS", 200))
#: Interleaved query pairs in the overhead comparison.
N_QUERIES = int(os.environ.get("REPRO_BENCH_RECOVERY_QUERIES", 150))
#: CI gate: MTTR must be <= this factor times the lease timeout.
MTTR_FACTOR = float(os.environ.get("REPRO_RECOVERY_MTTR_FACTOR", 2.0))
#: CI gate: supervised/unsupervised median wall ratio minus one.
OVERHEAD_MAX = float(os.environ.get("REPRO_RECOVERY_OVERHEAD_MAX", 0.10))

BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_recovery.json")


def _record_bench(section: str, payload: dict) -> None:
    """Merge one bench's numbers into ``BENCH_recovery.json``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as f:
            data = json.load(f)
    data[section] = payload
    with open(BENCH_JSON, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")


def _platform(supervised: bool) -> MoDisSENSE:
    cfg = PlatformConfig(
        cluster=ClusterConfig(num_nodes=4, regions_per_table=8),
        faults=FaultsConfig(enabled=True, seed=42),
        supervisor=SupervisorConfig(enabled=supervised),
    )
    p = MoDisSENSE(cfg)
    p.poi_repository.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                             keywords=("x",), category="cafe"))
    for uid in range(1, N_USERS + 1):
        p.visits_repository.store(VisitStruct(
            user_id=uid, poi_id=1, timestamp=uid, grade=0.5, poi_name="A",
            lat=37.98, lon=23.73, keywords=("x",)))
    return p


def _query() -> SearchQuery:
    return SearchQuery(
        friend_ids=tuple(range(1, N_USERS + 1)), sort_by="hotness"
    )


def test_mttr_drill(benchmark):
    """Seeded kill -> lease expiry -> WAL split/replay, MTTR gated."""
    p = _platform(supervised=True)
    scheduler = build_platform_scheduler(p)
    lease = p.config.supervisor.lease_timeout_s
    period = p.config.supervisor.heartbeat_period_s
    victim = 1
    p.fault_injector.schedule_node_event(2, "fail", victim)

    def drill():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            p.search(_query())                 # fan-out 1: clean
            degraded = p.search(_query())      # fan-out 2: crash lands
        # Heal through the heartbeat loop alone.
        for _ in range(int((lease + 2 * period) / period) + 1):
            scheduler.advance_by(period)
        healed = p.search(_query())
        return degraded, healed

    degraded, healed = benchmark.pedantic(drill, rounds=1, iterations=1)
    assert degraded.degraded and degraded.coverage < 1.0
    assert not healed.degraded and healed.coverage == 1.0
    assert len(p.supervisor.recovery_history) == 1
    record = p.supervisor.recovery_history[0]
    mttr_s = record["mttr_s"]
    # A forced drill for comparison: no detection wait, replay only.
    forced = p.supervisor.force_drill()
    gate_s = MTTR_FACTOR * lease

    register_table(
        "Self-healing drill: MTTR vs %.0fx lease-timeout gate"
        % MTTR_FACTOR,
        ["metric", "value"],
        [
            ["lease timeout (s, simulated)", "%.1f" % lease],
            ["heartbeat period (s, simulated)", "%.1f" % period],
            ["regions re-homed", len(record["regions"])],
            ["WAL cells replayed", record["cells_replayed"]],
            ["MTTR (s, simulated, incl. detection)", "%.3f" % mttr_s],
            ["forced-drill MTTR (s, replay only)",
             "%.3f" % forced["mttr_s"]],
            ["gate (s)", "%.1f" % gate_s],
        ],
    )
    _record_bench(
        "mttr_drill",
        {
            "users": N_USERS,
            "lease_timeout_s": lease,
            "heartbeat_period_s": period,
            "regions_rehomed": len(record["regions"]),
            "placement": record["regions"],
            "cells_replayed": record["cells_replayed"],
            "mttr_s": round(mttr_s, 4),
            "forced_drill_mttr_s": round(forced["mttr_s"], 4),
            "gate_mttr_factor": MTTR_FACTOR,
            "gate_s": gate_s,
        },
    )
    assert mttr_s <= gate_s
    assert forced["mttr_s"] <= mttr_s
    p.shutdown()


def test_zero_fault_overhead(benchmark):
    """Supervisor on vs off, no faults: the steady-state tax, gated."""
    supervised = _platform(supervised=True)
    baseline = _platform(supervised=False)
    query = _query()
    # Warm both stacks (JIT-free Python, but caches and lazy state).
    supervised.search(query)
    baseline.search(query)

    def interleaved():
        on_ms, off_ms = [], []
        for _ in range(N_QUERIES):
            t0 = time.perf_counter()
            supervised.search(query)
            on_ms.append((time.perf_counter() - t0) * 1e3)
            t0 = time.perf_counter()
            baseline.search(query)
            off_ms.append((time.perf_counter() - t0) * 1e3)
        # The write path is where the WAL-handle indirection lives;
        # 10x the seed volume so the walls are measurable, not noise.
        n_writes = N_USERS * 10
        t0 = time.perf_counter()
        for i in range(n_writes):
            supervised.visits_repository.store(VisitStruct(
                user_id=i % N_USERS + 1, poi_id=1, timestamp=10_000 + i,
                grade=0.5, poi_name="A", lat=37.98, lon=23.73,
                keywords=("x",)))
        write_on_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for i in range(n_writes):
            baseline.visits_repository.store(VisitStruct(
                user_id=i % N_USERS + 1, poi_id=1, timestamp=10_000 + i,
                grade=0.5, poi_name="A", lat=37.98, lon=23.73,
                keywords=("x",)))
        write_off_s = time.perf_counter() - t0
        return on_ms, off_ms, write_on_s, write_off_s

    on_ms, off_ms, write_on_s, write_off_s = benchmark.pedantic(
        interleaved, rounds=1, iterations=1
    )
    median_on = statistics.median(on_ms)
    median_off = statistics.median(off_ms)
    overhead = median_on / median_off - 1.0
    write_overhead = write_on_s / write_off_s - 1.0

    register_table(
        "Supervisor zero-fault overhead (%d interleaved queries)"
        % N_QUERIES,
        ["metric", "supervisor off", "supervisor on"],
        [
            ["median query wall (ms)",
             "%.3f" % median_off, "%.3f" % median_on],
            ["query overhead", "", "%+.1f%%" % (overhead * 100)],
            ["%d-visit write wall (s)" % (N_USERS * 10),
             "%.3f" % write_off_s, "%.3f" % write_on_s],
            ["write overhead", "", "%+.1f%%" % (write_overhead * 100)],
            ["gate", "", "<= %.0f%%" % (OVERHEAD_MAX * 100)],
        ],
    )
    _record_bench(
        "zero_fault_overhead",
        {
            "queries": N_QUERIES,
            "median_query_ms_supervised": round(median_on, 3),
            "median_query_ms_baseline": round(median_off, 3),
            "query_overhead": round(overhead, 4),
            "write_wall_s_supervised": round(write_on_s, 4),
            "write_wall_s_baseline": round(write_off_s, 4),
            "write_overhead": round(write_overhead, 4),
            "gate_overhead_max": OVERHEAD_MAX,
        },
    )
    assert overhead <= OVERHEAD_MAX
    supervised.shutdown()
    baseline.shutdown()
