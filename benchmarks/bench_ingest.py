"""Write-path benchmarks: the repositories' update-rate claims.

Paper Section 2.1: the GPS Traces Repository "is expected to deal with
a high update rate" (hence HBase, no indexes), while the POI repository
sees "low insert/update rates" (hence PostgreSQL with rich indexes).
These benches measure both write paths for real — actual wall time, no
simulation — plus the LSM machinery (flush + compaction) under load.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

import pytest

from repro.config import ClusterConfig, IngestConfig, PlatformConfig
from repro.core import MoDisSENSE, SearchQuery
from repro.core.repositories.visits import VisitStruct
from repro.datagen import generate_pois
from repro.datagen.gps import GPSPoint

from ._report import RESULTS_DIR, register_table

N_GPS = 20_000
N_VISITS = 10_000
N_POIS = 2_000

# ---- streaming-ingest bench knobs (shrunk by CI smoke via env) -------------
#: Visits pushed through each write path in the group-commit microbench.
N_GROUP_COMMIT = int(os.environ.get("REPRO_BENCH_INGEST_WRITES", 80_000))
#: Visits streamed in the end-to-end concurrent-query bench.
N_STREAM = int(os.environ.get("REPRO_BENCH_INGEST_STREAM", 30_000))
#: Users in the streaming bench; friend sets sample from these.
N_STREAM_USERS = int(os.environ.get("REPRO_BENCH_INGEST_USERS", 8_000))
#: Friends per concurrent personalized query (paper sweeps to ~9500).
N_QUERY_FRIENDS = int(os.environ.get("REPRO_BENCH_INGEST_FRIENDS", 6_000))
#: CI gate: batched group-commit must beat single-put by this factor.
SPEEDUP_MIN = float(os.environ.get("REPRO_INGEST_SPEEDUP_MIN", 3.0))
#: Hotness-freshness SLO for the streaming-vs-seed comparison: the
#: seed path re-runs its full batch recompute every this many wall
#: seconds (the streaming tier's coalesced refresh, 0.25 s, is tighter).
FRESHNESS_S = float(os.environ.get("REPRO_BENCH_FRESHNESS_S", 0.5))

BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_ingest.json")


def _record_bench(section: str, payload: dict) -> None:
    """Merge one bench's numbers into ``BENCH_ingest.json``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as f:
            data = json.load(f)
    data[section] = payload
    with open(BENCH_JSON, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")


def _fresh_platform() -> MoDisSENSE:
    return MoDisSENSE(
        PlatformConfig(cluster=ClusterConfig(num_nodes=4, regions_per_table=8))
    )


def test_write_throughput(benchmark):
    platform = _fresh_platform()
    rng = random.Random(17)
    pois = generate_pois(count=N_POIS, seed=17)

    gps_points = [
        GPSPoint(
            user_id=rng.randint(1, 500),
            lat=37.9 + rng.random() * 0.2,
            lon=23.6 + rng.random() * 0.2,
            timestamp=rng.randint(1, 1_000_000),
        )
        for _ in range(N_GPS)
    ]
    visits = [
        VisitStruct(
            user_id=rng.randint(1, 500),
            poi_id=rng.randint(1, N_POIS),
            timestamp=rng.randint(1, 1_000_000),
            grade=rng.random(),
            poi_name="Some Place",
            lat=37.9,
            lon=23.7,
            keywords=("food",),
        )
        for _ in range(N_VISITS)
    ]

    def ingest_all():
        t0 = time.perf_counter()
        platform.gps_repository.push_many(gps_points)
        gps_rate = N_GPS / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        platform.visits_repository.store_many(visits)
        visit_rate = N_VISITS / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        platform.load_pois(pois)
        poi_rate = N_POIS / (time.perf_counter() - t0)
        return gps_rate, visit_rate, poi_rate

    gps_rate, visit_rate, poi_rate = benchmark.pedantic(
        ingest_all, rounds=1, iterations=1
    )
    register_table(
        "Ingest throughput (writes/second, real wall time)",
        ["repository", "store", "writes/s"],
        [
            ["GPS traces (high update rate)", "HBase", "%.0f" % gps_rate],
            ["Visits", "HBase", "%.0f" % visit_rate],
            ["POIs (low insert rate)", "SQL, 4 indexes", "%.0f" % poi_rate],
        ],
    )
    # The unindexed HBase write paths must sustain a high rate.
    assert gps_rate > 5_000
    assert visit_rate > 5_000
    platform.shutdown()


def test_group_commit_vs_single_put(benchmark):
    """The streaming tier's storage-path claim, isolated and gated.

    Two identical WAL-attached tables absorb the same cell stream: one
    a put at a time (one sync boundary + one sorted insert each), one in
    256-cell group commits (one sync + one linear merge per region per
    batch).  Contents and WAL replay must come out identical; throughput
    must differ by at least ``REPRO_INGEST_SPEEDUP_MIN`` (default 3x) —
    the CI ``ingest-smoke`` gate.
    """
    from repro.hbase import Cell, HTable, TableDescriptor, WriteAheadLog

    def fresh_table() -> HTable:
        # HBase's production flush size (hbase.hregion.memstore.flush.size)
        # is 128 MB; the repo-wide 4 MB default would flush this stream
        # every few thousand cells and hide the memstore insert cost the
        # two write paths differ on.
        table = HTable(
            TableDescriptor(
                name="t", families=["f"], num_regions=4,
                flush_threshold_bytes=128 * 1024 * 1024,
            )
        )
        for region in table.regions:
            region.wal = WriteAheadLog()
        return table

    rng = random.Random(31)
    payload = json.dumps(
        {"grade": 0.5, "name": "Some Place", "lat": 37.9, "lon": 23.7,
         "keywords": ["food"], "hotness": 0.0, "interest": 0.0}
    ).encode()
    cells = [
        Cell(
            row=rng.randrange(1 << 16).to_bytes(2, "big") + b"-%08d" % i,
            family="f", qualifier=b"v", timestamp=i, value=payload,
        )
        for i in range(N_GROUP_COMMIT)
    ]

    def run_both():
        single = fresh_table()
        t0 = time.perf_counter()
        for cell in cells:
            single.put(cell)
        single_rate = len(cells) / (time.perf_counter() - t0)

        batched = fresh_table()
        t0 = time.perf_counter()
        for i in range(0, len(cells), 256):
            batched.put_batch(cells[i:i + 256])
        batched_rate = len(cells) / (time.perf_counter() - t0)
        return single, single_rate, batched, batched_rate

    single, single_rate, batched, batched_rate = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    speedup = batched_rate / single_rate

    # Correctness before speed: identical table contents, identical WAL
    # replay, and the group-commit ledger showing ~256x fewer syncs.
    single_scan = [(c.row, c.value) for c in single.scan("f")]
    batched_scan = [(c.row, c.value) for c in batched.scan("f")]
    assert batched_scan == single_scan
    single_syncs = sum(r.wal.sync_count for r in single.regions)
    batched_syncs = sum(r.wal.sync_count for r in batched.regions)
    assert single_syncs == N_GROUP_COMMIT
    assert batched_syncs <= (N_GROUP_COMMIT // 256 + 1) * 4

    register_table(
        "Group commit vs single put (%d visits, 4 regions, WAL on)"
        % N_GROUP_COMMIT,
        ["write path", "writes/s", "WAL sync boundaries"],
        [
            ["single put", "%.0f" % single_rate, single_syncs],
            ["group commit (256/batch)", "%.0f" % batched_rate,
             batched_syncs],
            ["speedup", "%.1fx" % speedup, ""],
        ],
    )
    _record_bench(
        "group_commit",
        {
            "writes": N_GROUP_COMMIT,
            "single_put_writes_per_s": round(single_rate),
            "batched_writes_per_s": round(batched_rate),
            "speedup": round(speedup, 2),
            "single_wal_syncs": single_syncs,
            "batched_wal_syncs": batched_syncs,
            "gate_min_speedup": SPEEDUP_MIN,
        },
    )
    assert speedup >= SPEEDUP_MIN


def test_streaming_ingest_with_concurrent_queries(benchmark):
    """End-to-end tentpole numbers: sustained writes/s while
    personalized ``N_QUERY_FRIENDS``-friend queries hammer the same
    regions, for both write paths under the same hotness-freshness SLO.

    Leg A streams through the ingest tier (group commit + incremental
    fold; visibility = coalesced dirty-POI refresh, staleness = drain
    lag).  Leg B is the seed path: synchronous single puts, with the
    batch MapReduce job re-run whenever ``FRESHNESS_S`` of wall time
    passes — the job rescans the *entire* visit history each time,
    which is exactly the cost the incremental fold eliminates.  The
    issue's acceptance gate is the ratio: streaming must sustain at
    least ``REPRO_INGEST_SPEEDUP_MIN``x the seed rate.  Finishes with
    the staleness oracle: incremental state == from-scratch recompute.
    """
    friends_n = min(N_QUERY_FRIENDS, N_STREAM_USERS)
    config = PlatformConfig(
        cluster=ClusterConfig(num_nodes=4, regions_per_table=8),
        ingest=IngestConfig(
            enabled=True,
            num_partitions=4,
            queue_capacity=8192,
            max_batch=256,
            rebalance_min_events=N_STREAM // 4 + 1,
        ),
    )
    platform = MoDisSENSE(config)
    platform.load_pois(generate_pois(count=N_POIS, seed=19))
    rng = random.Random(19)
    # Unique (user, ts, poi) keys and dyadic grades: the final oracle
    # equality is exact, not approximate.
    visits = [
        VisitStruct(
            user_id=rng.randint(1, N_STREAM_USERS),
            poi_id=rng.randint(1, N_POIS),
            timestamp=i + 1,
            grade=rng.randrange(0, 21) * 0.25,
            poi_name="Some Place",
            lat=37.9,
            lon=23.7,
            keywords=("food",),
        )
        for i in range(N_STREAM)
    ]
    friend_ids = tuple(
        rng.sample(range(1, N_STREAM_USERS + 1), friends_n)
    )

    query_stats = {"count": 0, "wall_ms": 0.0}
    stop_queries = threading.Event()

    def query_loop():
        while not stop_queries.is_set():
            t0 = time.perf_counter()
            platform.search(SearchQuery(friend_ids=friend_ids))
            query_stats["wall_ms"] += (time.perf_counter() - t0) * 1e3
            query_stats["count"] += 1

    # Seed-path leg: same visit mix, timestamps disjointly above the
    # streamed window so the oracle check stays exact.
    n_seed = max(1_000, N_STREAM // 2)
    seed_visits = [
        VisitStruct(
            user_id=rng.randint(1, N_STREAM_USERS),
            poi_id=rng.randint(1, N_POIS),
            timestamp=N_STREAM + 10 + i,
            grade=rng.randrange(0, 21) * 0.25,
            poi_name="Some Place",
            lat=37.9,
            lon=23.7,
            keywords=("food",),
        )
        for i in range(n_seed)
    ]

    def run_seed_batch_job(until_ts):
        """One full-history batch recompute + POI push — what the seed
        path pays every freshness deadline."""
        pairs, _ = platform.hotin_update._aggregate(
            0, until_ts, "bench-seed-refresh"
        )
        for poi_id, (count, grade_sum) in pairs:
            platform.poi_repository.update_hotin(
                poi_id, hotness=float(count), interest=grade_sum / count
            )

    def both_legs_under_load():
        thread = threading.Thread(target=query_loop, daemon=True)
        thread.start()
        try:
            # Leg A: batched streaming path.
            t_start = time.perf_counter()
            platform.ingest_visits(visits)
            t_submitted = time.perf_counter()
            assert platform.ingest.drain(timeout_s=120.0)
            t_drained = time.perf_counter()

            # Leg B: seed single-put path under the same freshness SLO.
            job_walls = []
            t_seed_start = time.perf_counter()
            last_job = t_seed_start
            for v in seed_visits:
                platform.visits_repository.store(v)
                if time.perf_counter() - last_job >= FRESHNESS_S:
                    t0 = time.perf_counter()
                    run_seed_batch_job(v.timestamp + 1)
                    job_walls.append(time.perf_counter() - t0)
                    last_job = time.perf_counter()
            t0 = time.perf_counter()  # final job: parity with drain
            run_seed_batch_job(seed_visits[-1].timestamp + 1)
            job_walls.append(time.perf_counter() - t0)
            t_seed_end = time.perf_counter()
        finally:
            stop_queries.set()
            thread.join(timeout=60.0)
        return t_start, t_submitted, t_drained, t_seed_start, t_seed_end, job_walls

    (t_start, t_submitted, t_drained, t_seed_start, t_seed_end,
     job_walls) = benchmark.pedantic(
        both_legs_under_load, rounds=1, iterations=1
    )
    writes_per_s = N_STREAM / (t_drained - t_start)
    staleness_s = t_drained - t_submitted
    seed_writes_per_s = n_seed / (t_seed_end - t_seed_start)
    seed_job_wall_s = max(job_walls)
    sustained_speedup = writes_per_s / seed_writes_per_s

    # Staleness oracle: after drain, incremental == batch recompute
    # (the window excludes the seed leg's disjoint timestamps).
    pairs, _scanned = platform.hotin_update._aggregate(
        0, N_STREAM + 1, "bench-oracle"
    )
    truth = {p: (c, g) for p, (c, g) in pairs}
    assert platform.incremental_hotin.snapshot(0, N_STREAM + 1) == truth

    mean_query_ms = (
        query_stats["wall_ms"] / query_stats["count"]
        if query_stats["count"] else 0.0
    )
    register_table(
        "Streaming vs seed ingest under %d-friend query load "
        "(freshness SLO %.2fs)" % (friends_n, FRESHNESS_S),
        ["metric", "value"],
        [
            ["visits streamed (tier)", N_STREAM],
            ["streaming writes/s (incl. drain)", "%.0f" % writes_per_s],
            ["streaming staleness (s, submit->visible)",
             "%.3f" % staleness_s],
            ["visits stored (seed single put)", n_seed],
            ["seed writes/s (incl. batch recomputes)",
             "%.0f" % seed_writes_per_s],
            ["seed batch-recompute wall (s, worst)",
             "%.3f" % seed_job_wall_s],
            ["sustained speedup", "%.1fx" % sustained_speedup],
            ["concurrent queries completed", query_stats["count"]],
            ["mean query wall (ms)", "%.1f" % mean_query_ms],
            ["incremental == batch recompute", "yes"],
        ],
    )
    _record_bench(
        "streaming_under_query_load",
        {
            "visits_streamed": N_STREAM,
            "users": N_STREAM_USERS,
            "query_friends": friends_n,
            "freshness_slo_s": FRESHNESS_S,
            "writes_per_s": round(writes_per_s),
            "staleness_s": round(staleness_s, 3),
            "seed_visits": n_seed,
            "seed_writes_per_s": round(seed_writes_per_s),
            "seed_batch_recompute_wall_s": round(seed_job_wall_s, 3),
            "sustained_speedup": round(sustained_speedup, 2),
            "concurrent_queries": query_stats["count"],
            "mean_query_wall_ms": round(mean_query_ms, 1),
            "oracle_in_sync": True,
            "gate_min_speedup": SPEEDUP_MIN,
        },
    )
    # The issue's acceptance gate: >= 3x sustained writes/s for the
    # batched streaming path vs the seed single-put path, same SLO.
    assert sustained_speedup >= SPEEDUP_MIN
    platform.shutdown()


def test_flush_and_compaction_under_load(benchmark):
    """Data stays readable as memstores roll to store files and compact;
    compaction bounds the file count and read amplification."""
    from repro.hbase import Cell, HTable, TableDescriptor

    table = HTable(
        TableDescriptor(
            name="t", families=["f"], num_regions=4,
            flush_threshold_bytes=64 * 1024,
        )
    )
    rng = random.Random(23)

    def load_and_compact():
        for i in range(30_000):
            row = rng.randrange(1 << 16).to_bytes(2, "big") + b"-%d" % i
            table.put(
                Cell(row=row, family="f", qualifier=b"q",
                     timestamp=i, value=b"x" * 40)
            )
        files_before = sum(r.store_file_count("f") for r in table.regions)
        t0 = time.perf_counter()
        table.compact()
        compact_s = time.perf_counter() - t0
        files_after = sum(r.store_file_count("f") for r in table.regions)
        t0 = time.perf_counter()
        scanned = sum(1 for _ in table.scan("f"))
        scan_s = time.perf_counter() - t0
        return files_before, files_after, compact_s, scanned, scan_s

    files_before, files_after, compact_s, scanned, scan_s = benchmark.pedantic(
        load_and_compact, rounds=1, iterations=1
    )
    register_table(
        "LSM maintenance: 30k writes with 64 KiB memstores",
        ["metric", "value"],
        [
            ["store files before compaction", files_before],
            ["store files after compaction", files_after],
            ["compaction wall time (s)", "%.2f" % compact_s],
            ["rows scanned after compaction", scanned],
            ["full scan wall time (s)", "%.2f" % scan_s],
        ],
    )
    assert files_before > files_after
    assert files_after <= 4  # one per region
    assert scanned == 30_000
