"""Write-path benchmarks: the repositories' update-rate claims.

Paper Section 2.1: the GPS Traces Repository "is expected to deal with
a high update rate" (hence HBase, no indexes), while the POI repository
sees "low insert/update rates" (hence PostgreSQL with rich indexes).
These benches measure both write paths for real — actual wall time, no
simulation — plus the LSM machinery (flush + compaction) under load.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.config import ClusterConfig, PlatformConfig
from repro.core import MoDisSENSE
from repro.core.repositories.visits import VisitStruct
from repro.datagen import generate_pois
from repro.datagen.gps import GPSPoint

from ._report import register_table

N_GPS = 20_000
N_VISITS = 10_000
N_POIS = 2_000


def _fresh_platform() -> MoDisSENSE:
    return MoDisSENSE(
        PlatformConfig(cluster=ClusterConfig(num_nodes=4, regions_per_table=8))
    )


def test_write_throughput(benchmark):
    platform = _fresh_platform()
    rng = random.Random(17)
    pois = generate_pois(count=N_POIS, seed=17)

    gps_points = [
        GPSPoint(
            user_id=rng.randint(1, 500),
            lat=37.9 + rng.random() * 0.2,
            lon=23.6 + rng.random() * 0.2,
            timestamp=rng.randint(1, 1_000_000),
        )
        for _ in range(N_GPS)
    ]
    visits = [
        VisitStruct(
            user_id=rng.randint(1, 500),
            poi_id=rng.randint(1, N_POIS),
            timestamp=rng.randint(1, 1_000_000),
            grade=rng.random(),
            poi_name="Some Place",
            lat=37.9,
            lon=23.7,
            keywords=("food",),
        )
        for _ in range(N_VISITS)
    ]

    def ingest_all():
        t0 = time.perf_counter()
        platform.gps_repository.push_many(gps_points)
        gps_rate = N_GPS / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        platform.visits_repository.store_many(visits)
        visit_rate = N_VISITS / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        platform.load_pois(pois)
        poi_rate = N_POIS / (time.perf_counter() - t0)
        return gps_rate, visit_rate, poi_rate

    gps_rate, visit_rate, poi_rate = benchmark.pedantic(
        ingest_all, rounds=1, iterations=1
    )
    register_table(
        "Ingest throughput (writes/second, real wall time)",
        ["repository", "store", "writes/s"],
        [
            ["GPS traces (high update rate)", "HBase", "%.0f" % gps_rate],
            ["Visits", "HBase", "%.0f" % visit_rate],
            ["POIs (low insert rate)", "SQL, 4 indexes", "%.0f" % poi_rate],
        ],
    )
    # The unindexed HBase write paths must sustain a high rate.
    assert gps_rate > 5_000
    assert visit_rate > 5_000
    platform.shutdown()


def test_flush_and_compaction_under_load(benchmark):
    """Data stays readable as memstores roll to store files and compact;
    compaction bounds the file count and read amplification."""
    from repro.hbase import Cell, HTable, TableDescriptor

    table = HTable(
        TableDescriptor(
            name="t", families=["f"], num_regions=4,
            flush_threshold_bytes=64 * 1024,
        )
    )
    rng = random.Random(23)

    def load_and_compact():
        for i in range(30_000):
            row = rng.randrange(1 << 16).to_bytes(2, "big") + b"-%d" % i
            table.put(
                Cell(row=row, family="f", qualifier=b"q",
                     timestamp=i, value=b"x" * 40)
            )
        files_before = sum(r.store_file_count("f") for r in table.regions)
        t0 = time.perf_counter()
        table.compact()
        compact_s = time.perf_counter() - t0
        files_after = sum(r.store_file_count("f") for r in table.regions)
        t0 = time.perf_counter()
        scanned = sum(1 for _ in table.scan("f"))
        scan_s = time.perf_counter() - t0
        return files_before, files_after, compact_s, scanned, scan_s

    files_before, files_after, compact_s, scanned, scan_s = benchmark.pedantic(
        load_and_compact, rounds=1, iterations=1
    )
    register_table(
        "LSM maintenance: 30k writes with 64 KiB memstores",
        ["metric", "value"],
        [
            ["store files before compaction", files_before],
            ["store files after compaction", files_after],
            ["compaction wall time (s)", "%.2f" % compact_s],
            ["rows scanned after compaction", scanned],
            ["full scan wall time (s)", "%.2f" % scan_s],
        ],
    )
    assert files_before > files_after
    assert files_after <= 4  # one per region
    assert scanned == 30_000
