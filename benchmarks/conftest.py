"""Benchmark fixtures and end-of-run report printing."""

from __future__ import annotations

import pytest

from . import _report
from ._workload import build_platform


@pytest.fixture(scope="session")
def bench_platform():
    """The ingested benchmark platform (built once per run)."""
    platform = build_platform()
    yield platform
    platform.shutdown()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every registered paper table at the end of the run."""
    for title, header, rows in _report.drain_tables():
        terminalreporter.write(_report.format_table(title, header, rows))
        terminalreporter.write("\n")
