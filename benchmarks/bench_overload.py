"""Overload drill: the admission layer's three headline claims, gated.

- **Brownout drill** — a deterministic 2x-overload closed-loop drives
  the ladder through every rung: goodput (served interactive work as a
  fraction of concurrency capacity) must stay at or above
  ``REPRO_OVERLOAD_GOODPUT_MIN`` (default 80%), and rejections must be
  priority-ordered — background shed outright before admin, interactive
  never shed outright.
- **Latency collapse without admission** — the web-tier queueing model
  at 2x arrival rate: unshed load grows the p99 without bound while a
  capacity-matched (admission-shaped) arrival stream stays flat; the
  collapse ratio must exceed ``REPRO_OVERLOAD_COLLAPSE_MIN`` (4x).
- **Zero overhead when idle** — admission on but un-triggered must cost
  at most ``REPRO_OVERLOAD_OVERHEAD_MAX`` (10%) in median query wall
  time and answer byte-identically: the protection is free until it
  fires.  This pair is the CI ``overload-smoke`` gate.
"""

from __future__ import annotations

import json
import os
import statistics
import time
import warnings

from repro.cluster import MergeWork, WebServerFarm
from repro.config import (
    AdmissionConfig,
    ClusterConfig,
    PlatformConfig,
)
from repro.core import MoDisSENSE, SearchQuery
from repro.core.admission import (
    LEVEL_NAMES,
    MAX_LEVEL,
    PRIORITY_ADMIN,
    PRIORITY_BACKGROUND,
    PRIORITY_INTERACTIVE,
)
from repro.core.api.rest import RestApi
from repro.core.repositories.poi import POI
from repro.core.repositories.visits import VisitStruct
from repro.errors import OverloadedError

from ._report import RESULTS_DIR, register_table

#: Users whose visits seed each drill platform.
N_USERS = int(os.environ.get("REPRO_BENCH_OVERLOAD_USERS", 100))
#: Closed-loop waves in the brownout drill.
N_WAVES = int(os.environ.get("REPRO_BENCH_OVERLOAD_WAVES", 20))
#: Interleaved query pairs in the zero-overhead comparison.
N_QUERIES = int(os.environ.get("REPRO_BENCH_OVERLOAD_QUERIES", 150))
#: CI gate: served interactive work / concurrency capacity.
GOODPUT_MIN = float(os.environ.get("REPRO_OVERLOAD_GOODPUT_MIN", 0.80))
#: CI gate: admission-on/off median wall ratio minus one.
OVERHEAD_MAX = float(os.environ.get("REPRO_OVERLOAD_OVERHEAD_MAX", 0.10))
#: CI gate: p99 ratio of unshed vs capacity-matched arrivals.
COLLAPSE_MIN = float(os.environ.get("REPRO_OVERLOAD_COLLAPSE_MIN", 4.0))

BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_overload.json")


def _record_bench(section: str, payload: dict) -> None:
    """Merge one bench's numbers into ``BENCH_overload.json``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as f:
            data = json.load(f)
    data[section] = payload
    with open(BENCH_JSON, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")


def _platform(admission: bool) -> MoDisSENSE:
    cfg = PlatformConfig(
        cluster=ClusterConfig(num_nodes=4, regions_per_table=8),
        admission=AdmissionConfig(
            enabled=admission, initial_limit=8, max_limit=16,
        ),
    )
    p = MoDisSENSE(cfg)
    p.poi_repository.add(POI(poi_id=1, name="A", lat=37.98, lon=23.73,
                             keywords=("x",), category="cafe"))
    for uid in range(1, N_USERS + 1):
        p.visits_repository.store(VisitStruct(
            user_id=uid, poi_id=1, timestamp=uid, grade=0.5, poi_name="A",
            lat=37.98, lon=23.73, keywords=("x",)))
    return p


def _query() -> SearchQuery:
    return SearchQuery(
        friend_ids=tuple(range(1, N_USERS + 1)), sort_by="hotness"
    )


def test_brownout_drill(benchmark):
    """2x closed-loop overload: every wave offers twice the interactive
    concurrency capacity plus a background/admin mix, serves what the
    controller admits, and ticks the ladder once."""
    p = _platform(admission=True)
    ctrl = p.admission
    query = _query()

    def drill():
        levels = []
        capacity = served = 0
        offered = {c: 0 for c in (PRIORITY_INTERACTIVE, PRIORITY_ADMIN,
                                  PRIORITY_BACKGROUND)}
        shed = dict(offered)  # outright brownout rejections per class
        latencies = []
        first_shed_wave = {}
        for wave in range(N_WAVES):
            limit = ctrl.limiters[PRIORITY_INTERACTIVE].limit
            capacity += limit
            tickets = []
            wave_offers = (
                [PRIORITY_INTERACTIVE] * (2 * limit)
                + [PRIORITY_BACKGROUND] * 4
                + [PRIORITY_ADMIN] * 2
            )
            for cls in wave_offers:
                offered[cls] += 1
                try:
                    tickets.append(ctrl.admit(cls))
                except OverloadedError as exc:
                    if "brownout" in str(exc):
                        shed[cls] += 1
                        first_shed_wave.setdefault(cls, wave)
            for ticket in tickets:
                if ticket.priority == PRIORITY_INTERACTIVE:
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore")
                        result = p.search(query)
                    served += 1
                    latencies.append(result.latency_ms)
                    ticket.finish(result.latency_ms)
                else:
                    ticket.finish()
            levels.append(ctrl.tick())
        return levels, capacity, served, offered, shed, \
            first_shed_wave, latencies

    levels, capacity, served, offered, shed, first_shed, latencies = \
        benchmark.pedantic(drill, rounds=1, iterations=1)
    goodput = served / capacity
    info = ctrl.describe()

    register_table(
        "Brownout drill: %d waves at 2x interactive load" % N_WAVES,
        ["metric", "value"],
        [
            ["final brownout level",
             "%d (%s)" % (levels[-1], LEVEL_NAMES[levels[-1]])],
            ["level trajectory", " ".join(map(str, levels))],
            ["interactive served / capacity",
             "%d / %d = %.0f%%" % (served, capacity, goodput * 100)],
            ["background shed outright",
             "%d / %d (first wave %s)" % (
                 shed[PRIORITY_BACKGROUND], offered[PRIORITY_BACKGROUND],
                 first_shed.get(PRIORITY_BACKGROUND))],
            ["admin shed outright",
             "%d / %d (first wave %s)" % (
                 shed[PRIORITY_ADMIN], offered[PRIORITY_ADMIN],
                 first_shed.get(PRIORITY_ADMIN))],
            ["interactive shed outright",
             "%d / %d" % (shed[PRIORITY_INTERACTIVE],
                          offered[PRIORITY_INTERACTIVE])],
            ["served median latency (ms, simulated)",
             "%.3f" % statistics.median(latencies)],
            ["goodput gate", ">= %.0f%%" % (GOODPUT_MIN * 100)],
        ],
    )
    _record_bench(
        "brownout_drill",
        {
            "waves": N_WAVES,
            "levels": levels,
            "final_level": levels[-1],
            "final_level_name": LEVEL_NAMES[levels[-1]],
            "interactive_capacity": capacity,
            "interactive_served": served,
            "goodput": round(goodput, 4),
            "offered": offered,
            "shed_outright": shed,
            "first_shed_wave": first_shed,
            "median_latency_ms": round(statistics.median(latencies), 4),
            "retry_budget": info["retry_budget"],
            "gate_goodput_min": GOODPUT_MIN,
        },
    )
    # Served interactive work tracks capacity through the whole drill.
    assert goodput >= GOODPUT_MIN
    # The ladder climbed monotonically to the top rung.
    assert levels == sorted(levels)
    assert levels[-1] == MAX_LEVEL
    # Priority-ordered shedding: background first, then admin, never
    # interactive.
    assert shed[PRIORITY_INTERACTIVE] == 0
    assert shed[PRIORITY_BACKGROUND] > shed[PRIORITY_ADMIN] > 0
    assert first_shed[PRIORITY_BACKGROUND] < first_shed[PRIORITY_ADMIN]
    p.shutdown()


def test_latency_collapse_without_admission(benchmark):
    """The web tier's queueing model at 2x arrival rate: without
    shedding the p99 grows without bound; shed to capacity it is flat."""
    n_jobs = 400
    items = 100_000

    def run():
        farm = WebServerFarm(num_servers=2, cores_per_server=4)
        service_s = items * farm.merge_cost_per_item_s
        cores = sum(len(s.core_available_at) for s in farm.servers)
        # Arrivals at twice the farm's aggregate service rate.
        overload_gap = service_s / (2 * cores)

        def p99(gap, keep_every):
            farm.reset()
            work = [
                MergeWork(query_id=i, items=items, ready_at=i * gap)
                for i in range(n_jobs)
                if i % keep_every == 0
            ]
            latencies = sorted(
                finish - job.ready_at
                for finish, job in zip(farm.schedule_merges(work), work)
            )
            return latencies[int(0.99 * (len(latencies) - 1))]

        # Admission off: everything offered is queued.
        collapsed = p99(overload_gap, keep_every=1)
        # Admission on: half the offers shed, arrivals match capacity.
        shaped = p99(overload_gap, keep_every=2)
        return collapsed, shaped, service_s

    collapsed, shaped, service_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ratio = collapsed / shaped

    register_table(
        "Latency collapse at 2x load: admission off vs on",
        ["metric", "admission off", "admission on"],
        [
            ["p99 merge latency (s, simulated)",
             "%.3f" % collapsed, "%.3f" % shaped],
            ["vs single-merge service time (%.3fs)" % service_s,
             "%.0fx" % (collapsed / service_s),
             "%.1fx" % (shaped / service_s)],
            ["collapse ratio", "%.1fx" % ratio,
             "gate >= %.1fx" % COLLAPSE_MIN],
        ],
    )
    _record_bench(
        "latency_collapse",
        {
            "jobs_offered": n_jobs,
            "items_per_merge": items,
            "service_time_s": round(service_s, 4),
            "p99_unshed_s": round(collapsed, 4),
            "p99_shed_to_capacity_s": round(shaped, 4),
            "collapse_ratio": round(ratio, 2),
            "gate_collapse_min": COLLAPSE_MIN,
        },
    )
    assert ratio >= COLLAPSE_MIN
    # Shed-to-capacity stays within a small multiple of pure service.
    assert shaped <= 3 * service_s


def test_zero_overhead_and_byte_identity(benchmark):
    """Admission on but idle: byte-identical answers and at most
    ``OVERHEAD_MAX`` median wall-time cost — the CI gate that the
    protection layer is free until it fires."""
    protected = _platform(admission=True)
    baseline = _platform(admission=False)
    query = _query()
    rest_on, rest_off = RestApi(protected), RestApi(baseline)
    requests = [
        ("search", {"friend_ids": list(range(1, N_USERS + 1)),
                    "sort_by": "hotness"}),
        ("trending", {"now": N_USERS, "window_s": 10 * N_USERS}),
        ("friends", {"user_id": 1}),
    ]
    identical = all(
        rest_on.handle(ep, dict(req)) == rest_off.handle(ep, dict(req))
        for ep, req in requests * 3
    )
    # Warm both stacks before timing.
    protected.search(query)
    baseline.search(query)

    def interleaved():
        on_ms, off_ms = [], []
        for _ in range(N_QUERIES):
            t0 = time.perf_counter()
            protected.search(query)
            on_ms.append((time.perf_counter() - t0) * 1e3)
            t0 = time.perf_counter()
            baseline.search(query)
            off_ms.append((time.perf_counter() - t0) * 1e3)
        return on_ms, off_ms

    on_ms, off_ms = benchmark.pedantic(interleaved, rounds=1, iterations=1)
    median_on = statistics.median(on_ms)
    median_off = statistics.median(off_ms)
    overhead = median_on / median_off - 1.0

    register_table(
        "Admission zero-overhead (%d interleaved queries)" % N_QUERIES,
        ["metric", "admission off", "admission on"],
        [
            ["median query wall (ms)",
             "%.3f" % median_off, "%.3f" % median_on],
            ["overhead", "", "%+.1f%%" % (overhead * 100)],
            ["byte-identical responses", "", str(identical)],
            ["gate", "", "<= %.0f%%" % (OVERHEAD_MAX * 100)],
        ],
    )
    _record_bench(
        "zero_overhead",
        {
            "queries": N_QUERIES,
            "median_query_ms_admission": round(median_on, 3),
            "median_query_ms_baseline": round(median_off, 3),
            "overhead": round(overhead, 4),
            "byte_identical": identical,
            "gate_overhead_max": OVERHEAD_MAX,
        },
    )
    assert identical
    assert overhead <= OVERHEAD_MAX
    protected.shutdown()
    baseline.shutdown()
