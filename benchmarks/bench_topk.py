"""Top-k early termination — the threshold algorithm must pay for itself.

The pruned fan-out (``TopKConfig(enabled=True)``) ships score-sorted
partial streams and cuts attribute decoding off once the running k-th
score proves the remainder of every region irrelevant.  This bench is
the acceptance gate for that machinery at paper scale: one personalized
query over ``REPRO_BENCH_TOPK_FRIENDS`` (default 6000) friends at
k = 10, both scoring modes, three configurations —

- **exhaustive**  (top-k off — the byte-identity baseline),
- **top-k cold**  (no scan cache: pruning is the only saving),
- **top-k warm**  (scan cache populated by the exhaustive run: cached
  partials carry decoded attributes, so emission is decode-free).

Gates (env-overridable for CI smoke):

- results byte-identical across all three configurations,
- ``cells_decoded`` reduced by >= ``REPRO_TOPK_DECODE_RATIO_MIN``
  (default 2.0) cold vs exhaustive, and to zero warm,
- median wall clock improved by >= ``REPRO_TOPK_SPEEDUP_MIN`` (default
  1.0, i.e. "not slower"; CI smoke sets 0.0 because the shrunk
  workload's absolute times are noise-dominated).

Numbers land in ``benchmarks/results/BENCH_topk.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.config import TopKConfig
from repro.core import SearchQuery
from repro.hbase import RegionScanCache

from ._report import RESULTS_DIR, register_table
from ._workload import NUM_USERS, friend_sample

FRIENDS = min(
    int(os.environ.get("REPRO_BENCH_TOPK_FRIENDS", 6000)), NUM_USERS - 1
)
K = int(os.environ.get("REPRO_BENCH_TOPK_K", 10))
REPETITIONS = max(3, int(os.environ.get("REPRO_BENCH_REPETITIONS", 5)))
DECODE_RATIO_MIN = float(os.environ.get("REPRO_TOPK_DECODE_RATIO_MIN", 2.0))
SPEEDUP_MIN = float(os.environ.get("REPRO_TOPK_SPEEDUP_MIN", 1.0))

BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_topk.json")


def _record_bench(section: str, payload: dict) -> None:
    """Merge one bench's numbers into ``BENCH_topk.json``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as f:
            data = json.load(f)
    data[section] = payload
    with open(BENCH_JSON, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")


def _fingerprint(result):
    """Bit-exact result identity: the byte-identity contract."""
    return [
        (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
        for p in result.pois
    ]


def _measure(qa, query):
    """Median wall clock over REPETITIONS plus the last result."""
    qa.search(query)  # warm (thread pool, page cache)
    samples = []
    result = None
    for _ in range(REPETITIONS):
        t0 = time.perf_counter()
        result = qa.search(query)
        samples.append((time.perf_counter() - t0) * 1e3)
    return statistics.median(samples), result


def test_topk_vs_exhaustive(bench_platform, benchmark):
    qa = bench_platform.query_answering
    inner = qa._inner
    cluster = bench_platform.hbase
    saved_topk = inner.topk

    def run():
        rows, payload = [], {}
        try:
            for sort_by in ("interest", "hotness"):
                query = SearchQuery(
                    friend_ids=friend_sample(FRIENDS, seed=4242),
                    sort_by=sort_by,
                    limit=K,
                )

                inner.topk = TopKConfig(enabled=False)
                cluster.attach_scan_cache(None)
                ex_ms, ex = _measure(qa, query)

                inner.topk = TopKConfig(enabled=True)
                cold_ms, cold = _measure(qa, query)

                # Warm path: the exhaustive query populates the scan
                # cache (top-k reads it but never stores), then the
                # pruned query answers decode-free off cached partials.
                # Keys are per (region, friend, window): capacity must
                # cover the friend set, not the region count.
                cache = RegionScanCache(max_entries=max(65536, 4 * FRIENDS))
                cluster.attach_scan_cache(cache)
                inner.topk = TopKConfig(enabled=False)
                qa.search(query)
                inner.topk = TopKConfig(enabled=True)
                warm_ms, warm = _measure(qa, query)
                cluster.attach_scan_cache(None)

                # Byte-identity across all three configurations.
                assert _fingerprint(cold) == _fingerprint(ex)
                assert _fingerprint(warm) == _fingerprint(ex)
                assert ex.cells_avoided == 0
                assert cold.cells_avoided > 0

                ratio = ex.cells_decoded / max(1, cold.cells_decoded)
                assert ratio >= DECODE_RATIO_MIN, (
                    "decode reduction %.2fx below the %.1fx gate at k=%d"
                    " (%d friends): exhaustive=%d topk=%d"
                    % (ratio, DECODE_RATIO_MIN, K, FRIENDS,
                       ex.cells_decoded, cold.cells_decoded)
                )
                assert warm.cells_decoded == 0, (
                    "warm-cache top-k decoded %d cells; cached partials"
                    " should make emission decode-free" % warm.cells_decoded
                )
                if SPEEDUP_MIN > 0:
                    assert ex_ms >= SPEEDUP_MIN * cold_ms, (
                        "top-k wall clock %.2fms not %.2fx faster than"
                        " exhaustive %.2fms" % (cold_ms, SPEEDUP_MIN, ex_ms)
                    )

                rows.append([
                    sort_by,
                    ex.cells_decoded, cold.cells_decoded, warm.cells_decoded,
                    "%.2fx" % ratio,
                    cold.regions_pruned_early,
                    "%.2f" % ex_ms, "%.2f" % cold_ms, "%.2f" % warm_ms,
                ])
                payload[sort_by] = {
                    "friends": FRIENDS,
                    "k": K,
                    "exhaustive": {
                        "wall_ms": ex_ms,
                        "cells_decoded": ex.cells_decoded,
                        "latency_ms_sim": ex.latency_ms,
                    },
                    "topk_cold": {
                        "wall_ms": cold_ms,
                        "cells_decoded": cold.cells_decoded,
                        "cells_avoided": cold.cells_avoided,
                        "regions_pruned_early": cold.regions_pruned_early,
                        "latency_ms_sim": cold.latency_ms,
                    },
                    "topk_warm_cache": {
                        "wall_ms": warm_ms,
                        "cells_decoded": warm.cells_decoded,
                        "latency_ms_sim": warm.latency_ms,
                    },
                    "decode_ratio": ratio,
                    "byte_identical": True,
                }
        finally:
            inner.topk = saved_topk
            cluster.attach_scan_cache(None)
        return rows, payload

    rows, payload = benchmark.pedantic(run, rounds=1, iterations=1)

    register_table(
        "Top-k early termination: %d friends, k=%d"
        " (median of %d reps)" % (FRIENDS, K, REPETITIONS),
        ["sort", "decoded (exh)", "decoded (topk)", "decoded (warm)",
         "reduction", "pruned regions", "exh ms", "topk ms", "warm ms"],
        rows,
    )
    _record_bench("topk_vs_exhaustive", payload)
    benchmark.extra_info["topk"] = payload
