"""Ablation — the hybrid storage split (paper Section 2).

"We devise a hybrid architecture that uses HBase for batch queries that
can be efficiently executed in parallel and PostgreSQL for online
random-access queries that cannot."

This bench quantifies the split's two directions:

1. non-personalized queries on the SQL store (indexed random access)
   vs the same query forced through an HBase-style full scan;
2. personalized aggregation on HBase coprocessors vs the same
   aggregation through repeated SQL-side lookups.
"""

from __future__ import annotations

import time

import pytest

from repro.core import SearchQuery
from repro.geo import BoundingBox
from repro.sqlstore import Query

from ._report import register_table
from ._workload import friend_sample

#: A selective neighbourhood window (~600 m on a side, a few dozen POIs
#: out of 8500): the access-path comparison needs index-friendly
#: selectivity, as random-access POI lookups are exactly the workload
#: the paper gives PostgreSQL.
ATHENS = BoundingBox(37.981, 23.725, 37.987, 23.731)


def test_nonpersonalized_sql_vs_full_scan(bench_platform, benchmark):
    """Bounding-box top-k: spatial index vs scanning every POI row."""

    def run_both():
        t0 = time.perf_counter()
        for _ in range(50):
            indexed = bench_platform.poi_repository.search(
                bbox=ATHENS, sort_by="hotness", limit=10
            )
        indexed_wall = (time.perf_counter() - t0) / 50

        table = bench_platform.sql.table("pois")
        t0 = time.perf_counter()
        for _ in range(50):
            rows = [
                row
                for _rid, row in table.scan()
                if ATHENS.contains_coords(row["lat"], row["lon"])
            ]
            rows.sort(key=lambda r: r["hotness"], reverse=True)
            scanned = rows[:10]
        scan_wall = (time.perf_counter() - t0) / 50
        return indexed, indexed_wall, scanned, scan_wall

    indexed, indexed_wall, scanned, scan_wall = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    register_table(
        "Ablation: non-personalized query, SQL index vs full scan",
        ["path", "latency (ms)"],
        [
            ["SQL spatial index (paper)", "%.2f" % (indexed_wall * 1e3)],
            ["full table scan", "%.2f" % (scan_wall * 1e3)],
        ],
    )
    # Hotness ties make exact ordering schema-dependent; the top-k score
    # *multisets* must agree, and the index must be faster.
    assert sorted(p.hotness for p in indexed) == sorted(
        r["hotness"] for r in scanned
    )
    assert indexed_wall < scan_wall


def test_personalized_on_right_store(bench_platform, benchmark):
    """Personalized queries belong on the parallel store: the simulated
    coprocessor latency beats the serialized client-side path at every
    friend count."""

    def sweep():
        out = {}
        for friends in (500, 2000, 4000):
            ids = friend_sample(friends, seed=friends)
            query = SearchQuery(friend_ids=ids, sort_by="interest", limit=10)
            copro = bench_platform.query_answering.search(query)
            client = (
                bench_platform.query_answering.search_personalized_client_side(
                    query
                )
            )
            out[friends] = (copro.latency_ms, client.latency_ms)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_table(
        "Ablation: personalized query placement (simulated ms, 16 nodes)",
        ["friends", "HBase coprocessors (paper)", "single-server SQL-style"],
        [
            [friends, "%.0f" % copro, "%.0f" % client]
            for friends, (copro, client) in sorted(results.items())
        ],
    )
    for friends, (copro, client) in results.items():
        assert copro < client, friends
