"""Resilient fan-out — recovery machinery must be free when idle.

The retry/hedge/breaker path added to ``HBaseCluster`` runs on every
region invocation, so this bench is the guard that keeps the clean path
honest: it replays the personalized workload through the same platform
twice per repetition — injector detached vs an *armed-but-quiet*
:class:`FaultInjector` (enabled, all rates zero) — and fails if

- any answer differs in any observable field (the byte-identical
  contract of the zero-fault path), or
- the armed medians exceed the detached ones by more than
  ``REPRO_FAULT_OVERHEAD_PCT`` (default 10) percent on the largest
  friend count.

It then smoke-tests the degraded path itself: kill one node with lost
replicas, assert the query still answers (flagged, with missing
regions), recover, and assert the exact answer returns.

Repetitions alternate armed/detached so ambient machine noise hits both
sides equally.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.config import FaultsConfig
from repro.core import FaultInjector, SearchQuery

from ._report import register_table
from ._workload import NUM_USERS, friend_sample

#: Same axis as Figure 2 (truncated at smoke scale); the ISSUE's worked
#: example — one dead node at 6000 friends — rides the largest count.
FRIEND_COUNTS = tuple(
    f for f in (500, 2000, 3500, 6000) if f < NUM_USERS
) or (NUM_USERS // 4, NUM_USERS // 2)
REPETITIONS = max(5, int(os.environ.get("REPRO_BENCH_REPETITIONS", 10)))
OVERHEAD_LIMIT_PCT = float(os.environ.get("REPRO_FAULT_OVERHEAD_PCT", 10.0))


def _fingerprint(result):
    return (
        [(p.poi_id, p.name, p.score, p.visit_count) for p in result.pois],
        result.latency_ms,
        result.records_scanned,
        result.regions_used,
        result.regions_pruned,
        result.cells_decoded,
        result.degraded,
        result.missing_regions,
        result.coverage,
    )


def _wall_ms(qa, query):
    t0 = time.perf_counter()
    result = qa.search(query)
    return (time.perf_counter() - t0) * 1e3, result


def test_zero_fault_overhead_under_limit(bench_platform, benchmark):
    qa = bench_platform.query_answering
    cluster = bench_platform.hbase
    quiet = FaultInjector(FaultsConfig(enabled=True))

    def measure():
        series = {}
        try:
            for friends in FRIEND_COUNTS:
                query = SearchQuery(
                    friend_ids=friend_sample(friends, seed=8000 + friends),
                    sort_by="interest",
                    limit=10,
                )
                # Warm both paths (thread-pool spin-up, page cache).
                cluster.attach_fault_injector(None)
                qa.search(query)
                cluster.attach_fault_injector(quiet)
                qa.search(query)
                detached, armed = [], []
                for _ in range(REPETITIONS):
                    cluster.attach_fault_injector(None)
                    ms_off, r_off = _wall_ms(qa, query)
                    cluster.attach_fault_injector(quiet)
                    ms_on, r_on = _wall_ms(qa, query)
                    detached.append(ms_off)
                    armed.append(ms_on)
                    # Identical answers, injector armed or not.
                    assert _fingerprint(r_on) == _fingerprint(r_off)
                series[friends] = (
                    statistics.median(detached),
                    statistics.median(armed),
                )
        finally:
            cluster.attach_fault_injector(None)
        return series

    series = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for friends in FRIEND_COUNTS:
        off_ms, on_ms = series[friends]
        overhead = (on_ms - off_ms) / off_ms * 100.0 if off_ms else 0.0
        rows.append([
            friends, "%.2f" % off_ms, "%.2f" % on_ms, "%+.1f%%" % overhead,
        ])
    register_table(
        "Resilient fan-out: wall-clock per query, injector detached vs"
        " armed-with-zero-rates (median of %d reps)" % REPETITIONS,
        ["friends", "detached (ms)", "armed (ms)", "overhead"],
        rows,
    )
    benchmark.extra_info["series"] = {
        str(f): {"detached_ms": off, "armed_ms": on}
        for f, (off, on) in series.items()
    }

    largest = FRIEND_COUNTS[-1]
    off_ms, on_ms = series[largest]
    overhead_pct = (on_ms - off_ms) / off_ms * 100.0
    assert overhead_pct <= OVERHEAD_LIMIT_PCT, (
        "resilience overhead %.1f%% exceeds %.1f%% at %d friends"
        " (detached %.2fms, armed %.2fms)"
        % (overhead_pct, OVERHEAD_LIMIT_PCT, largest, off_ms, on_ms)
    )


def test_degraded_mode_smoke(bench_platform):
    """The ISSUE's worked example: one node of the bench cluster dies
    with its replicas behind; the largest query must still answer —
    flagged — and return to the exact answer after recovery."""
    import warnings

    qa = bench_platform.query_answering
    cluster = bench_platform.hbase
    query = SearchQuery(
        friend_ids=friend_sample(FRIEND_COUNTS[-1], seed=8000),
        sort_by="interest",
        limit=10,
    )
    injector = FaultInjector(FaultsConfig(
        enabled=True, lost_region_fraction=1.0, stale_location_errors=0,
    ))
    try:
        clean = _fingerprint(qa.search(query))
        cluster.attach_fault_injector(injector)
        cluster.fail_node(0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # DegradedResultWarning
            degraded = qa.search(query)
        assert degraded.degraded
        assert degraded.missing_regions
        assert 0.0 < degraded.coverage < 1.0
        assert len(degraded.pois) <= len(clean[0]) or degraded.pois
        cluster.recover_node(0)
        restored = qa.search(query)
        cluster.attach_fault_injector(None)
        assert _fingerprint(restored) == clean
    finally:
        cluster.attach_fault_injector(None)
        if 0 not in cluster.simulation.live_nodes():
            cluster.recover_node(0)
