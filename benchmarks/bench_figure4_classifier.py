"""Figure 4 — classification accuracy vs training-set size.

Paper setup (Section 3.2): Naive Bayes trained on Tripadvisor reviews;
baseline preprocessing (stemming, lowercase, stopwords) vs the
optimized configuration (tf, 2-grams, BNS, rare-word pruning);
*training* accuracy reported across training-set sizes.  Expected
shape: the optimized classifier wins at every size; a ~93.8% peak near
the 500k-document knee; accuracy degrades past it (overfit /
label-noise tail); held-out accuracy ~94% for the tuned classifier.

Scale: the corpus is generated, not crawled, and document counts are
scaled 1:250 (40k actual = "10M" on the paper's axis) so the sweep runs
in minutes; the generator's noise schedule is calibrated against the
same relative knee position.
"""

from __future__ import annotations

import pytest

from repro.config import SentimentConfig
from repro.datagen import ReviewGenerator
from repro.text import SentimentPipeline

from ._report import register_table

#: 1 actual document = SCALE paper documents on the axis labels.
SCALE = 250
#: Actual sweep sizes; labels = size * SCALE (1M .. 10M like the paper).
SWEEP = (4_000, 12_000, 20_000, 28_000, 40_000)
CAPACITY = 40_000
#: The paper's knee: 500k documents = 2000 actual.
KNEE_ACTUAL = 2_000


def _make_generator():
    return ReviewGenerator(
        seed=2015,
        capacity=CAPACITY,
        noise_onset=KNEE_ACTUAL / CAPACITY,
        max_noise=0.30,
    )


def _figure4_series():
    gen = _make_generator()
    corpus = gen.labeled_texts(max(SWEEP))
    series = {}
    for size in SWEEP:
        train = corpus[:size]
        baseline = SentimentPipeline(SentimentConfig.baseline())
        optimized = SentimentPipeline(SentimentConfig.optimized())
        base_report = baseline.train(train)
        opt_report = optimized.train(train)
        series[size] = {
            "baseline": base_report.training_accuracy,
            "optimized": opt_report.training_accuracy,
        }
    return series


def test_figure4_accuracy_vs_training_size(benchmark):
    series = benchmark.pedantic(_figure4_series, rounds=1, iterations=1)

    rows = [
        [
            "%.1fM" % (size * SCALE / 1e6),
            "%.1f%%" % (100 * series[size]["baseline"]),
            "%.1f%%" % (100 * series[size]["optimized"]),
        ]
        for size in SWEEP
    ]
    register_table(
        "Figure 4: training accuracy vs training-set size"
        " (axis scaled 1:%d)" % SCALE,
        ["documents", "baseline", "optimized"],
        rows,
    )
    benchmark.extra_info["series"] = {str(k): v for k, v in series.items()}

    # ---- shape assertions ----
    # (a) optimizations win at every training size.
    for size in SWEEP:
        assert series[size]["optimized"] > series[size]["baseline"], size
    # (b) accuracy degrades past the knee for both variants.
    for variant in ("baseline", "optimized"):
        assert series[SWEEP[0]][variant] > series[SWEEP[-1]][variant]
    # (c) monotone-ish decline: each step past the knee loses accuracy.
    opt = [series[s]["optimized"] for s in SWEEP]
    assert all(b <= a + 0.005 for a, b in zip(opt, opt[1:])), opt


def test_peak_accuracy_at_knee(benchmark):
    """The paper's '93.8% at the 500k threshold' row."""
    gen = _make_generator()

    def train_at_knee():
        pipeline = SentimentPipeline(SentimentConfig.optimized())
        report = pipeline.train(gen.labeled_texts(KNEE_ACTUAL))
        return report.training_accuracy

    accuracy = benchmark.pedantic(train_at_knee, rounds=1, iterations=1)
    register_table(
        "Section 3.2: peak training accuracy at the 500k-document knee",
        ["metric", "paper", "measured"],
        [["training accuracy", "93.8%", "%.1f%%" % (100 * accuracy)]],
    )
    assert accuracy > 0.90


def test_holdout_accuracy(benchmark):
    """The paper's headline: '94% towards unseen data'."""
    gen = _make_generator()

    def train_and_evaluate():
        pipeline = SentimentPipeline(SentimentConfig.optimized())
        pipeline.train(gen.labeled_texts(KNEE_ACTUAL))
        # Unseen documents from the clean (pre-knee-quality) region:
        # a held-out slice whose label noise is the 2% crawl floor.
        clean_gen = ReviewGenerator(
            seed=77, capacity=CAPACITY,
            noise_onset=KNEE_ACTUAL / CAPACITY, max_noise=0.30,
        )
        holdout = clean_gen.labeled_texts(1_000)
        return pipeline.evaluate(holdout)

    accuracy = benchmark.pedantic(train_and_evaluate, rounds=1, iterations=1)
    register_table(
        "Section 3.2: accuracy towards unseen data",
        ["metric", "paper", "measured"],
        [["holdout accuracy", "94%", "%.1f%%" % (100 * accuracy)]],
    )
    assert accuracy > 0.88


def test_classifier_ablation(benchmark):
    """Each optimization's individual contribution (DESIGN.md ablation 3)."""
    gen = _make_generator()
    train = gen.labeled_texts(KNEE_ACTUAL)
    holdout = ReviewGenerator(
        seed=78, capacity=CAPACITY, noise_onset=KNEE_ACTUAL / CAPACITY,
        max_noise=0.30,
    ).labeled_texts(800)

    variants = {
        "baseline": SentimentConfig.baseline(),
        "+tf": SentimentConfig(use_tf=True, use_bigrams=False, use_bns=False,
                               min_occurrences=0),
        "+2-grams": SentimentConfig(use_tf=False, use_bigrams=True,
                                    use_bns=False, min_occurrences=0),
        "+BNS": SentimentConfig(use_tf=False, use_bigrams=False, use_bns=True,
                                min_occurrences=0),
        "+pruning": SentimentConfig(use_tf=False, use_bigrams=False,
                                    use_bns=False, min_occurrences=3),
        "all (optimized)": SentimentConfig.optimized(),
    }

    def run_all():
        out = {}
        for name, config in variants.items():
            pipeline = SentimentPipeline(config)
            pipeline.train(train)
            out[name] = pipeline.evaluate(holdout)
        return out

    accuracies = benchmark.pedantic(run_all, rounds=1, iterations=1)
    register_table(
        "Ablation: classifier optimizations, holdout accuracy",
        ["variant", "accuracy"],
        [[name, "%.1f%%" % (100 * acc)] for name, acc in accuracies.items()],
    )
    assert accuracies["all (optimized)"] >= accuracies["baseline"]
