"""Event detection — MR-DBSCAN over GPS traces (paper Section 2.2).

The paper reports no event-detection figure, but the module is a core
contribution; this bench records detection quality (all seeded hotspots
found, known-POI traces filtered, background stays noise) and the
speedup of the distributed clustering over the sequential baseline's
work distribution.
"""

from __future__ import annotations

import time

import pytest

from repro.clustering import dbscan, mr_dbscan
from repro.config import ClusterConfig, JobsConfig, PlatformConfig
from repro.core import MoDisSENSE
from repro.datagen import generate_pois, generate_traces
from repro.geo import GeoPoint

from ._report import register_table


def test_event_detection_quality(benchmark):
    platform = MoDisSENSE(PlatformConfig.small())
    pois = generate_pois(count=500, seed=3)
    platform.load_pois(pois)
    scenario = generate_traces(
        user_ids=list(range(1, 20)),
        known_pois=pois,
        num_hotspots=6,
        points_per_hotspot=150,
        near_poi_points=400,
        background_points=600,
        seed=31,
    )
    platform.push_gps(scenario.points)

    report = benchmark.pedantic(
        platform.detect_events, kwargs={"since": 0}, rounds=1, iterations=1
    )

    matched = 0
    for hotspot in scenario.hotspot_centers:
        if any(
            poi.location.distance_m(hotspot) < 100.0
            for poi in report.pois_created
        ):
            matched += 1

    register_table(
        "Event detection: MR-DBSCAN over GPS traces",
        ["metric", "value"],
        [
            ["traces scanned", report.traces_scanned],
            ["after known-POI filter", report.traces_after_filter],
            ["seeded hotspots", len(scenario.hotspot_centers)],
            ["clusters found", report.clusters_found],
            ["hotspots recovered", matched],
        ],
    )
    assert report.clusters_found == len(scenario.hotspot_centers)
    assert matched == len(scenario.hotspot_centers)
    # The known-POI filter must remove (at least) the near-POI traffic.
    assert (
        report.traces_scanned - report.traces_after_filter
        >= scenario.near_known_poi_count
    )
    platform.shutdown()


def test_mr_dbscan_agrees_with_sequential_at_scale(benchmark):
    scenario = generate_traces(
        user_ids=list(range(1, 10)),
        known_pois=[],
        num_hotspots=8,
        points_per_hotspot=200,
        near_poi_points=0,
        background_points=1500,
        seed=32,
    )
    points = [GeoPoint(p.lat, p.lon) for p in scenario.points]

    def run_both():
        t0 = time.perf_counter()
        seq = dbscan(points, eps_m=60, min_points=12)
        seq_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        dist = mr_dbscan(points, eps_m=60, min_points=12, target_partitions=16)
        dist_wall = time.perf_counter() - t0
        return seq, seq_wall, dist, dist_wall

    seq, seq_wall, dist, dist_wall = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    register_table(
        "Event detection: sequential DBSCAN vs MR-DBSCAN"
        " (%d points)" % len(points),
        ["variant", "clusters", "wall time (s)"],
        [
            ["sequential", seq.num_clusters, "%.2f" % seq_wall],
            ["MR-DBSCAN (16 partitions)", dist.num_clusters,
             "%.2f" % dist_wall],
        ],
    )
    assert dist.num_clusters == seq.num_clusters
