"""Figure 3 — mean latency of concurrent personalized queries.

Paper setup: 30..50 concurrent queries, 6000 SN friends each, clusters
of 4/8/16 nodes.  Expected shape: latency rises with concurrency; at 30
queries the 16-node cluster is ~2.5x better than 4 nodes; the 16-node
curve rises the slowest.
"""

from __future__ import annotations

import os
import statistics

import pytest

from ._report import register_table
from ._workload import (
    PAPER_CLUSTERS,
    friend_sample,
    region_records_for_friends,
    simulate_query_ms,
)

CONCURRENCY_LEVELS = (30, 35, 40, 45, 50)
FRIENDS_PER_QUERY = 6000

#: Cache ablation: concurrent queries cycling this many distinct friend
#: sets, so later queries re-request partitions earlier ones scanned.
ABLATION_CONCURRENCY = 50
ABLATION_PROFILES = 8
#: Gate for the cached/uncached throughput ratio (CI smoke relaxes it).
CACHE_SPEEDUP_MIN = float(os.environ.get("REPRO_CACHE_SPEEDUP_MIN", "2.0"))


def _figure3_series(platform):
    """{concurrency: {nodes: mean_s}}.

    One 6000-friend region-work profile is captured per distinct query;
    concurrency replays N profiles through the shared-cluster scheduler.
    """
    # Distinct friend sets per concurrent query, as real users differ.
    profiles = [
        region_records_for_friends(
            platform, friend_sample(FRIENDS_PER_QUERY, seed=31 + i)
        )
        for i in range(8)
    ]
    series = {}
    for concurrency in CONCURRENCY_LEVELS:
        series[concurrency] = {}
        for nodes in PAPER_CLUSTERS:
            # Cycle the profiles to build the concurrent batch.
            from repro.cluster import ClusterSimulation, Task
            from repro.config import ClusterConfig
            from ._workload import (
                COST_PER_RECORD_US,
                MERGE_COST_PER_ITEM_US,
                REGIONS,
            )

            sim = ClusterSimulation(
                ClusterConfig(
                    num_nodes=nodes,
                    regions_per_table=REGIONS,
                    cost_per_record_us=COST_PER_RECORD_US,
                    merge_cost_per_item_us=MERGE_COST_PER_ITEM_US,
                )
            )
            all_regions = sorted(
                {r for profile in profiles for r in profile}
            )
            sim.place_regions(all_regions)
            batches = []
            for qi in range(concurrency):
                profile = profiles[qi % len(profiles)]
                batches.append(
                    [
                        Task(region_id=r, records_scanned=work[0],
                             results_returned=work[1], query_id=qi)
                        for r, work in sorted(profile.items())
                    ]
                )
            routing = sim.cost_model.routing_cost_s(FRIENDS_PER_QUERY)
            timelines = sim.run_queries(
                batches, client_setup_s=[routing] * len(batches)
            )
            series[concurrency][nodes] = statistics.mean(
                t.latency_s for t in timelines
            )
    return series


def test_figure3_concurrent_query_latency(bench_platform, benchmark):
    series = benchmark.pedantic(
        _figure3_series, args=(bench_platform,), rounds=1, iterations=1
    )

    rows = [
        [conc] + ["%.1f" % series[conc][n] for n in PAPER_CLUSTERS]
        for conc in CONCURRENCY_LEVELS
    ]
    register_table(
        "Figure 3: mean execution time (s) for concurrent queries"
        " (6000 friends each)",
        ["concurrent"] + ["%d nodes" % n for n in PAPER_CLUSTERS],
        rows,
    )
    benchmark.extra_info["series"] = series

    # ---- shape assertions ----
    # (a) more concurrency never helps.
    for nodes in PAPER_CLUSTERS:
        values = [series[c][nodes] for c in CONCURRENCY_LEVELS]
        assert all(b >= a for a, b in zip(values, values[1:])), values
    # (b) bigger clusters win at every concurrency level.
    for conc in CONCURRENCY_LEVELS:
        assert series[conc][4] > series[conc][8] > series[conc][16]
    # (c) the paper's factor: at 30 queries the 16-node cluster should
    #     clearly beat 4 nodes.  The paper observed ~2.5x; our simulated
    #     scaling is closer to ideal (no web-tier/RPC saturation), so we
    #     accept up to ~5x and record the delta in EXPERIMENTS.md.
    speedup = series[30][4] / series[30][16]
    assert 2.0 <= speedup <= 5.0, speedup
    # (d) the 16-node curve grows the slowest in absolute terms.
    growth = {
        n: series[CONCURRENCY_LEVELS[-1]][n] - series[CONCURRENCY_LEVELS[0]][n]
        for n in PAPER_CLUSTERS
    }
    assert growth[16] < growth[8] < growth[4], growth


def _run_concurrent_batch(platform, queries):
    """One real fan-out batch over the shared cluster; returns the
    results plus the batch makespan (max simulated latency — queries all
    submit at t=0, so the slowest finish IS the batch wall time)."""
    results = platform.query_answering.search_personalized_batch(queries)
    makespan_ms = max(r.latency_ms for r in results)
    return results, makespan_ms


def test_figure3_cache_ablation(bench_platform, benchmark):
    """Cached vs uncached throughput at 50 concurrent 6000-friend
    queries drawn from ``ABLATION_PROFILES`` shared friend sets.

    Unlike the series benchmark above (which replays captured work
    profiles), both arms here execute the real coprocessor fan-out, so
    the cached arm's scan savings — repeat friend partitions served from
    the region scan cache — show up directly in the simulated makespan.
    The answers must be element-wise identical across the two arms.
    """
    from repro.hbase import RegionScanCache

    from ._workload import NUM_USERS

    # Full scale matches the paper's 6000 friends; the smoke dataset
    # (REPRO_BENCH_USERS) keeps the same ~57% coverage of the user base.
    friends_per_query = min(FRIENDS_PER_QUERY, (NUM_USERS * 4) // 7)
    samples = [
        friend_sample(friends_per_query, seed=31 + i)
        for i in range(ABLATION_PROFILES)
    ]
    from repro.core.modules.query_answering import SearchQuery

    queries = [
        SearchQuery(
            friend_ids=tuple(samples[qi % ABLATION_PROFILES]),
            sort_by="interest",
        )
        for qi in range(ABLATION_CONCURRENCY)
    ]
    cluster = bench_platform.hbase

    def ablation():
        cluster.scan_cache = None  # uncached baseline arm
        base_results, base_makespan = _run_concurrent_batch(
            bench_platform, queries
        )
        cache = RegionScanCache()
        cluster.attach_scan_cache(cache)
        try:
            cached_results, cached_makespan = _run_concurrent_batch(
                bench_platform, queries
            )
            stats = cache.stats()
        finally:
            # The platform fixture is shared with other benchmarks —
            # leave it exactly as found.
            cluster.scan_cache = None
        return {
            "base_results": base_results,
            "cached_results": cached_results,
            "base_makespan_ms": base_makespan,
            "cached_makespan_ms": cached_makespan,
            "cache_stats": stats,
        }

    out = benchmark.pedantic(ablation, rounds=1, iterations=1)

    speedup = out["base_makespan_ms"] / out["cached_makespan_ms"]
    base_records = sum(r.records_scanned for r in out["base_results"])
    cached_records = sum(r.records_scanned for r in out["cached_results"])
    hit_rate = out["cache_stats"]["hit_rate"]
    register_table(
        "Figure 3 ablation: region scan cache"
        " (%d concurrent queries x %d friends, %d shared friend sets)"
        % (ABLATION_CONCURRENCY, friends_per_query, ABLATION_PROFILES),
        ["mode", "makespan (ms)", "records scanned", "hit rate"],
        [
            ["uncached", "%.1f" % out["base_makespan_ms"],
             str(base_records), "-"],
            ["cached", "%.1f" % out["cached_makespan_ms"],
             str(cached_records), "%.3f" % hit_rate],
            ["speedup", "%.2fx" % speedup, "", ""],
        ],
    )
    benchmark.extra_info["cache_speedup"] = speedup
    benchmark.extra_info["cache_hit_rate"] = hit_rate

    # ---- correctness: byte-identical answers across the two arms ----
    for base, cached in zip(out["base_results"], out["cached_results"]):
        assert [
            (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
            for p in base.pois
        ] == [
            (p.poi_id, p.name, p.lat, p.lon, p.score, p.visit_count)
            for p in cached.pois
        ]
    # ---- effectiveness ----
    assert cached_records < base_records
    assert hit_rate > 0.5, hit_rate  # shared friend sets must mostly hit
    assert speedup >= CACHE_SPEEDUP_MIN, speedup
