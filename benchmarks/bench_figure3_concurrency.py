"""Figure 3 — mean latency of concurrent personalized queries.

Paper setup: 30..50 concurrent queries, 6000 SN friends each, clusters
of 4/8/16 nodes.  Expected shape: latency rises with concurrency; at 30
queries the 16-node cluster is ~2.5x better than 4 nodes; the 16-node
curve rises the slowest.
"""

from __future__ import annotations

import statistics

import pytest

from ._report import register_table
from ._workload import (
    PAPER_CLUSTERS,
    friend_sample,
    region_records_for_friends,
    simulate_query_ms,
)

CONCURRENCY_LEVELS = (30, 35, 40, 45, 50)
FRIENDS_PER_QUERY = 6000


def _figure3_series(platform):
    """{concurrency: {nodes: mean_s}}.

    One 6000-friend region-work profile is captured per distinct query;
    concurrency replays N profiles through the shared-cluster scheduler.
    """
    # Distinct friend sets per concurrent query, as real users differ.
    profiles = [
        region_records_for_friends(
            platform, friend_sample(FRIENDS_PER_QUERY, seed=31 + i)
        )
        for i in range(8)
    ]
    series = {}
    for concurrency in CONCURRENCY_LEVELS:
        series[concurrency] = {}
        for nodes in PAPER_CLUSTERS:
            # Cycle the profiles to build the concurrent batch.
            from repro.cluster import ClusterSimulation, Task
            from repro.config import ClusterConfig
            from ._workload import (
                COST_PER_RECORD_US,
                MERGE_COST_PER_ITEM_US,
                REGIONS,
            )

            sim = ClusterSimulation(
                ClusterConfig(
                    num_nodes=nodes,
                    regions_per_table=REGIONS,
                    cost_per_record_us=COST_PER_RECORD_US,
                    merge_cost_per_item_us=MERGE_COST_PER_ITEM_US,
                )
            )
            all_regions = sorted(
                {r for profile in profiles for r in profile}
            )
            sim.place_regions(all_regions)
            batches = []
            for qi in range(concurrency):
                profile = profiles[qi % len(profiles)]
                batches.append(
                    [
                        Task(region_id=r, records_scanned=work[0],
                             results_returned=work[1], query_id=qi)
                        for r, work in sorted(profile.items())
                    ]
                )
            routing = sim.cost_model.routing_cost_s(FRIENDS_PER_QUERY)
            timelines = sim.run_queries(
                batches, client_setup_s=[routing] * len(batches)
            )
            series[concurrency][nodes] = statistics.mean(
                t.latency_s for t in timelines
            )
    return series


def test_figure3_concurrent_query_latency(bench_platform, benchmark):
    series = benchmark.pedantic(
        _figure3_series, args=(bench_platform,), rounds=1, iterations=1
    )

    rows = [
        [conc] + ["%.1f" % series[conc][n] for n in PAPER_CLUSTERS]
        for conc in CONCURRENCY_LEVELS
    ]
    register_table(
        "Figure 3: mean execution time (s) for concurrent queries"
        " (6000 friends each)",
        ["concurrent"] + ["%d nodes" % n for n in PAPER_CLUSTERS],
        rows,
    )
    benchmark.extra_info["series"] = series

    # ---- shape assertions ----
    # (a) more concurrency never helps.
    for nodes in PAPER_CLUSTERS:
        values = [series[c][nodes] for c in CONCURRENCY_LEVELS]
        assert all(b >= a for a, b in zip(values, values[1:])), values
    # (b) bigger clusters win at every concurrency level.
    for conc in CONCURRENCY_LEVELS:
        assert series[conc][4] > series[conc][8] > series[conc][16]
    # (c) the paper's factor: at 30 queries the 16-node cluster should
    #     clearly beat 4 nodes.  The paper observed ~2.5x; our simulated
    #     scaling is closer to ideal (no web-tier/RPC saturation), so we
    #     accept up to ~5x and record the delta in EXPERIMENTS.md.
    speedup = series[30][4] / series[30][16]
    assert 2.0 <= speedup <= 5.0, speedup
    # (d) the 16-node curve grows the slowest in absolute terms.
    growth = {
        n: series[CONCURRENCY_LEVELS[-1]][n] - series[CONCURRENCY_LEVELS[0]][n]
        for n in PAPER_CLUSTERS
    }
    assert growth[16] < growth[8] < growth[4], growth
