"""Trending-events queries (paper Sections 1-2).

"Show me the three hottest places visited by my x specific friends the
last y hours" — personalized trending with configurable granularity.
Sweeps the window length and the friend count, reporting the simulated
latency and verifying ranking correctness against a direct count.
"""

from __future__ import annotations

import pytest

from repro import TrendingQuery

from ._report import register_table
from ._workload import friend_sample

T_END = 1_430_000_000
HOURS = 3600


def test_trending_window_and_friends_sweep(bench_platform, benchmark):
    def sweep():
        rows = []
        for friends in (100, 1000, 5000):
            ids = friend_sample(friends, seed=friends + 1)
            for label, window in (
                ("6h", 6 * HOURS),
                ("24h", 24 * HOURS),
                ("7d", 7 * 24 * HOURS),
            ):
                result = bench_platform.trending_events(
                    TrendingQuery(
                        now=T_END, window_s=window, friend_ids=ids, limit=3
                    )
                )
                rows.append((friends, label, result))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_table(
        "Trending: personalized 'hottest places, last y hours' queries",
        ["friends", "window", "results", "latency (ms)", "visits scanned"],
        [
            [friends, label, len(result.pois),
             "%.0f" % result.latency_ms, result.records_scanned]
            for friends, label, result in rows
        ],
    )
    # Longer windows can only scan more and rank higher counts first.
    for _friends, _label, result in rows:
        scores = [p.score for p in result.pois]
        assert scores == sorted(scores, reverse=True)


def test_trending_ranking_matches_direct_count(bench_platform, benchmark):
    ids = friend_sample(500, seed=77)
    window = 7 * 24 * HOURS
    query = TrendingQuery(now=T_END, window_s=window, friend_ids=ids, limit=5)

    result = benchmark.pedantic(
        bench_platform.trending_events, args=(query,), rounds=1, iterations=1
    )

    counts = {}
    for uid in ids:
        for visit in bench_platform.visits_repository.visits_of_user(
            uid, since=T_END - window, until=T_END
        ):
            counts[visit.poi_id] = counts.get(visit.poi_id, 0) + 1
    if counts:
        best_count = max(counts.values())
        assert result.pois[0].score == best_count
