"""Ablation — replicated visit structs vs join at query time.

Paper Section 2.1: "The alternative schema design strategy would be
joining POI information with visit information at query time.  However,
our experiments suggest data replication to be more efficient."

Both schemas are ingested with the same visits; the personalized query
is answered from each.  The normalized schema must fetch POI attributes
per distinct visit row at query time (random reads against the POI
store), which the replicated schema avoids.
"""

from __future__ import annotations

import time

import pytest

from repro.config import ClusterConfig, PlatformConfig
from repro.core import MoDisSENSE, SearchQuery
from repro.datagen import generate_pois, generate_visits

from ._report import register_table

NUM_POIS = 2000
NUM_USERS = 1500
FRIENDS = 800


def _build(schema_mode: str) -> MoDisSENSE:
    platform = MoDisSENSE(
        PlatformConfig(
            cluster=ClusterConfig(num_nodes=16, regions_per_table=32)
        ),
        visits_schema_mode=schema_mode,
    )
    pois = generate_pois(count=NUM_POIS, seed=42)
    platform.load_pois(pois)
    platform.load_visits(
        generate_visits(range(1, NUM_USERS + 1), pois, seed=42,
                        mean=17.0, std=10.1)
    )
    return platform


#: Simulated cost of one random-access POI lookup from a coprocessor to
#: the PostgreSQL tier (network round-trip + index probe).  Real HBase
#: coprocessors joining against PostgreSQL would pay this per visit;
#: the in-process stand-in hides it, so the bench charges it explicitly.
POI_LOOKUP_COST_S = 0.2e-3


def test_replicated_vs_normalized_schema(benchmark):
    replicated = _build("replicated")
    normalized = _build("normalized")
    friends = tuple(range(1, FRIENDS + 1))
    query = SearchQuery(friend_ids=friends, sort_by="interest", limit=10)

    def run_both():
        rep = replicated.query_answering.search_personalized_client_side(query)
        norm = normalized.query_answering.search_personalized_client_side(query)
        # The normalized path resolves POI attributes once per scanned
        # visit (see search_personalized_client_side).
        return rep, norm, norm.records_scanned

    rep, norm, lookups = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # The normalized schema performs one POI-repository read per scanned
    # visit at query time; replication performs none.
    norm_latency_ms = norm.latency_ms + lookups * POI_LOOKUP_COST_S * 1e3

    register_table(
        "Ablation: replicated visit structs vs join-at-query-time"
        " (%d friends)" % FRIENDS,
        ["schema", "simulated latency (ms)", "POI-store lookups"],
        [
            ["replicated (paper)", "%.0f" % rep.latency_ms, 0],
            ["normalized + join", "%.0f" % norm_latency_ms, lookups],
        ],
    )

    # Same top-10 with scores computed either way.
    assert [p.poi_id for p in rep.pois] == [p.poi_id for p in norm.pois]
    # The join pays one random read per scanned visit...
    assert lookups == norm.records_scanned
    # ...which dominates: replication wins, as the paper found.
    assert rep.latency_ms < norm_latency_ms / 3

    replicated.shutdown()
    normalized.shutdown()


def test_replicated_storage_overhead(benchmark):
    """The price of replication the paper accepts: bigger visit cells."""

    def measure():
        rep = _build("replicated")
        norm = _build("normalized")
        rep_bytes = sum(
            sf.size_bytes
            for region in rep.visits_repository.table.regions
            for sf in region._store_files["v"]
        ) + sum(
            region._memstores["v"].size_bytes
            for region in rep.visits_repository.table.regions
        )
        norm_bytes = sum(
            sf.size_bytes
            for region in norm.visits_repository.table.regions
            for sf in region._store_files["v"]
        ) + sum(
            region._memstores["v"].size_bytes
            for region in norm.visits_repository.table.regions
        )
        rep.shutdown()
        norm.shutdown()
        return rep_bytes, norm_bytes

    rep_bytes, norm_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    register_table(
        "Ablation: visit-table storage footprint by schema",
        ["schema", "bytes", "relative"],
        [
            ["replicated (paper)", rep_bytes,
             "%.1fx" % (rep_bytes / norm_bytes)],
            ["normalized", norm_bytes, "1.0x"],
        ],
    )
    assert rep_bytes > norm_bytes  # replication costs space, buys time
