"""Figure 2 — personalized query latency vs number of SN friends.

Paper setup (Section 3.1): one query at a time, 500..10000 friends
picked uniformly at random, clusters of 4/8/16 dual-core nodes, each
point averaged over 10 repetitions.  Expected shape: latency grows
almost linearly with friends; larger clusters are proportionally
faster; >5000 friends stays under ~1 s on 16 nodes.
"""

from __future__ import annotations

import os
import statistics

import pytest

from ._report import register_table
from ._workload import (
    PAPER_CLUSTERS,
    friend_sample,
    region_records_for_friends,
    simulate_query_ms,
)

from ._workload import NUM_USERS

#: The paper's x-axis (truncated when REPRO_BENCH_USERS shrinks the
#: dataset for smoke runs).
FRIEND_COUNTS = tuple(
    f for f in (500, 2000, 3500, 5000, 6500, 8000, 9500) if f < NUM_USERS
) or (NUM_USERS // 4, NUM_USERS // 2)
REPETITIONS = int(os.environ.get("REPRO_BENCH_REPETITIONS", 10))


def _figure2_series(platform):
    """{friends: {nodes: mean_ms}} with the real coprocessor executed
    once per (friends, repetition) and each cluster size simulated from
    the captured per-region work."""
    series = {}
    for friends in FRIEND_COUNTS:
        per_nodes = {n: [] for n in PAPER_CLUSTERS}
        for rep in range(REPETITIONS):
            ids = friend_sample(friends, seed=100 * friends + rep)
            records = region_records_for_friends(platform, ids)
            for nodes in PAPER_CLUSTERS:
                per_nodes[nodes].append(
                    simulate_query_ms(
                        records, num_nodes=nodes, route_items=friends
                    )[0]
                )
        series[friends] = {
            n: statistics.mean(samples) for n, samples in per_nodes.items()
        }
    return series


def test_figure2_query_latency_vs_friends(bench_platform, benchmark):
    series = benchmark.pedantic(
        _figure2_series, args=(bench_platform,), rounds=1, iterations=1
    )

    rows = [
        [friends] + ["%.0f" % series[friends][n] for n in PAPER_CLUSTERS]
        for friends in FRIEND_COUNTS
    ]
    register_table(
        "Figure 2: query latency (ms) vs number of SN friends",
        ["friends"] + ["%d nodes" % n for n in PAPER_CLUSTERS],
        rows,
    )
    benchmark.extra_info["series"] = series

    # ---- shape assertions (the paper's claims) ----
    # (a) latency grows with the number of friends, for every cluster.
    for nodes in PAPER_CLUSTERS:
        values = [series[f][nodes] for f in FRIEND_COUNTS]
        assert all(b > a for a, b in zip(values, values[1:])), values
    # (b) near-linear growth: the last/first latency ratio tracks the
    #     friends ratio within a factor of two.
    for nodes in PAPER_CLUSTERS:
        ratio = series[FRIEND_COUNTS[-1]][nodes] / series[FRIEND_COUNTS[0]][nodes]
        friends_ratio = FRIEND_COUNTS[-1] / FRIEND_COUNTS[0]
        assert friends_ratio / 2 < ratio < friends_ratio * 2
    # (c) bigger clusters are faster at every point.
    for friends in FRIEND_COUNTS:
        assert series[friends][4] > series[friends][8] > series[friends][16]
    # (d) the paper's headline: >5000 friends in under a second on the
    #     16-node cluster (skipped at smoke scale).
    if 5000 in series:
        assert series[5000][16] < 1000.0
    if 6500 in series:
        assert series[6500][16] < 1500.0
