"""Ablation — coprocessor (region-local) aggregation vs client-side merge.

Paper Section 2.2 claims the coprocessor design wins because each region
filters/aggregates/sorts locally and only partial top-lists cross the
wire, and that more regions mean more intra-query parallelism.  This
bench measures both claims.
"""

from __future__ import annotations

import time

import pytest

from repro.core import SearchQuery
from repro.core.modules.query_answering import _VisitScanRequest

from ._report import register_table
from ._workload import (
    NUM_USERS,
    friend_sample,
    region_records_for_friends,
    simulate_query_ms,
)

#: Truncated when REPRO_BENCH_USERS shrinks the dataset for smoke runs.
FRIENDS = min(4000, NUM_USERS // 2)


def test_coprocessor_vs_client_side(bench_platform, benchmark):
    """The same personalized query through both execution strategies."""
    ids = friend_sample(FRIENDS, seed=55)
    query = SearchQuery(friend_ids=ids, sort_by="interest", limit=10)

    def run_both():
        copro = bench_platform.query_answering.search(query)
        client = bench_platform.query_answering.search_personalized_client_side(
            query
        )
        return copro, client

    copro, client = benchmark.pedantic(run_both, rounds=1, iterations=1)

    register_table(
        "Ablation: coprocessor vs client-side aggregation"
        " (%d friends, 16 nodes)" % FRIENDS,
        ["strategy", "latency (ms)", "records scanned"],
        [
            ["coprocessor (paper)", "%.0f" % copro.latency_ms,
             copro.records_scanned],
            ["client-side merge", "%.0f" % client.latency_ms,
             client.records_scanned],
        ],
    )

    # Same answer, very different cost.
    assert [p.poi_id for p in copro.pois] == [p.poi_id for p in client.pois]
    assert copro.latency_ms < client.latency_ms / 3


def test_routed_vs_broadcast_fanout(bench_platform, benchmark):
    """Routed fan-out (client partitions friends by salted key prefix)
    vs the broadcast fan-out (every region gets the full friend list and
    probes ownership per friend).  Same answer; routing removes the
    O(friends x regions) probing and never invokes friendless regions.
    """
    qa = bench_platform.query_answering
    cluster = bench_platform.hbase
    table_name = bench_platform.visits_repository.table.name
    ids = friend_sample(FRIENDS, seed=57)
    query = SearchQuery(friend_ids=ids, sort_by="interest", limit=10)
    broadcast_request = _VisitScanRequest(
        friend_ids=ids, bbox=None, keywords=(), since=None, until=None,
        routed=False,
    )

    def run_pair():
        # Both sides time route/probe + fan-out + client merge, so the
        # comparison is end to end and symmetric.
        t0 = time.perf_counter()
        routed = qa.search(query)
        routed_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        call = cluster.coprocessor_exec(
            table_name, qa._coprocessor, broadcast_request
        )
        broadcast = qa.merge_and_rank(query, call)
        broadcast_s = time.perf_counter() - t0
        return routed, routed_s, broadcast, broadcast_s

    def run_rounds(rounds=3):
        # Untimed warmup: the first fan-out in a fresh process pays the
        # lazy thread-pool spin-up, which would otherwise be charged to
        # whichever strategy happens to run first.  Best-of-N wall
        # clocks keep the comparison out of scheduler noise.
        run_pair()
        best_r = best_b = float("inf")
        for _ in range(rounds):
            routed, routed_s, broadcast, broadcast_s = run_pair()
            best_r = min(best_r, routed_s)
            best_b = min(best_b, broadcast_s)
        return routed, best_r, broadcast, best_b

    routed, routed_s, broadcast, broadcast_s = benchmark.pedantic(
        run_rounds, rounds=1, iterations=1
    )

    # A small friend list is where pruning bites: most regions own none
    # of the queried friends and are never invoked at all.
    small_query = SearchQuery(friend_ids=friend_sample(8, seed=58),
                              sort_by="interest", limit=10)
    small_routed = qa.search(small_query)
    small_broadcast = qa.merge_and_rank(
        small_query,
        cluster.coprocessor_exec(
            table_name, qa._coprocessor,
            _VisitScanRequest(
                friend_ids=small_query.friend_ids, bbox=None, keywords=(),
                since=None, until=None, routed=False,
            ),
        ),
    )

    register_table(
        "Ablation: routed vs broadcast coprocessor fan-out (16 nodes)",
        ["fan-out", "friends", "wall-clock (s)", "simulated (ms)",
         "regions invoked", "regions pruned"],
        [
            ["routed (this work)", FRIENDS, "%.2f" % routed_s,
             "%.0f" % routed.latency_ms, routed.regions_used,
             routed.regions_pruned],
            ["broadcast (seed)", FRIENDS, "%.2f" % broadcast_s,
             "%.0f" % broadcast.latency_ms, broadcast.regions_used,
             broadcast.regions_pruned],
            ["routed (this work)", 8, "-",
             "%.0f" % small_routed.latency_ms, small_routed.regions_used,
             small_routed.regions_pruned],
            ["broadcast (seed)", 8, "-",
             "%.0f" % small_broadcast.latency_ms,
             small_broadcast.regions_used, small_broadcast.regions_pruned],
        ],
    )

    # Identical ranked answer — routing is a pure execution change.
    assert [p.poi_id for p in routed.pois] == [p.poi_id for p in broadcast.pois]
    for a, b in zip(routed.pois, broadcast.pois):
        assert abs(a.score - b.score) < 1e-9
    assert [p.poi_id for p in small_routed.pois] == [
        p.poi_id for p in small_broadcast.pois
    ]
    # Broadcast touches every region; routing reports its pruning even
    # when a 4000-friend query happens to hit all 32 regions.
    assert broadcast.regions_pruned == 0
    assert routed.regions_used + routed.regions_pruned == 32
    # The structural win: an 8-friend query invokes at most 8 regions
    # routed, but all 32 broadcast.
    assert small_routed.regions_used <= 8
    assert small_routed.regions_pruned >= 24
    assert small_broadcast.regions_used == 32
    # Routing removes the O(friends x regions) ownership probing, so it
    # must not lose on real wall-clock (a noise allowance keeps the
    # assertion robust on loaded CI machines; the structural assertions
    # above are the deterministic part).
    if FRIENDS >= 2000:
        assert routed_s <= broadcast_s * 1.1


def test_more_regions_more_parallelism(bench_platform, benchmark):
    """Paper: "Increasing the regions number ... achieves higher degree
    of parallelism within a single query."

    The captured per-region work of a real query is re-bucketed into
    fewer regions and replayed: fewer regions = fewer concurrently
    runnable tasks per query.
    """
    ids = friend_sample(FRIENDS, seed=56)

    def sweep():
        work = region_records_for_friends(bench_platform, ids)
        out = {}
        for regions in (4, 8, 16, 32):
            # Coalesce the 32 real regions into `regions` buckets.
            buckets = {}
            for i, (region, (records, results)) in enumerate(
                sorted(work.items())
            ):
                prev = buckets.get(i % regions, (0, 0))
                buckets[i % regions] = (
                    prev[0] + records, prev[1] + results,
                )
            out[regions] = simulate_query_ms(buckets, num_nodes=16)[0]
        return out

    latencies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_table(
        "Ablation: regions per table vs single-query latency (16 nodes)",
        ["regions", "latency (ms)"],
        [[r, "%.0f" % ms] for r, ms in sorted(latencies.items())],
    )
    assert latencies[32] < latencies[8] < latencies[4]
