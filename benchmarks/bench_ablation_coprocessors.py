"""Ablation — coprocessor (region-local) aggregation vs client-side merge.

Paper Section 2.2 claims the coprocessor design wins because each region
filters/aggregates/sorts locally and only partial top-lists cross the
wire, and that more regions mean more intra-query parallelism.  This
bench measures both claims.
"""

from __future__ import annotations

import pytest

from repro.core import SearchQuery

from ._report import register_table
from ._workload import (
    friend_sample,
    region_records_for_friends,
    simulate_query_ms,
)

FRIENDS = 4000


def test_coprocessor_vs_client_side(bench_platform, benchmark):
    """The same personalized query through both execution strategies."""
    ids = friend_sample(FRIENDS, seed=55)
    query = SearchQuery(friend_ids=ids, sort_by="interest", limit=10)

    def run_both():
        copro = bench_platform.query_answering.search(query)
        client = bench_platform.query_answering.search_personalized_client_side(
            query
        )
        return copro, client

    copro, client = benchmark.pedantic(run_both, rounds=1, iterations=1)

    register_table(
        "Ablation: coprocessor vs client-side aggregation"
        " (%d friends, 16 nodes)" % FRIENDS,
        ["strategy", "latency (ms)", "records scanned"],
        [
            ["coprocessor (paper)", "%.0f" % copro.latency_ms,
             copro.records_scanned],
            ["client-side merge", "%.0f" % client.latency_ms,
             client.records_scanned],
        ],
    )

    # Same answer, very different cost.
    assert [p.poi_id for p in copro.pois] == [p.poi_id for p in client.pois]
    assert copro.latency_ms < client.latency_ms / 3


def test_more_regions_more_parallelism(bench_platform, benchmark):
    """Paper: "Increasing the regions number ... achieves higher degree
    of parallelism within a single query."

    The captured per-region work of a real query is re-bucketed into
    fewer regions and replayed: fewer regions = fewer concurrently
    runnable tasks per query.
    """
    ids = friend_sample(FRIENDS, seed=56)

    def sweep():
        work = region_records_for_friends(bench_platform, ids)
        out = {}
        for regions in (4, 8, 16, 32):
            # Coalesce the 32 real regions into `regions` buckets.
            buckets = {}
            for i, (region, (records, results)) in enumerate(
                sorted(work.items())
            ):
                prev = buckets.get(i % regions, (0, 0))
                buckets[i % regions] = (
                    prev[0] + records, prev[1] + results,
                )
            out[regions] = simulate_query_ms(buckets, num_nodes=16)[0]
        return out

    latencies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_table(
        "Ablation: regions per table vs single-query latency (16 nodes)",
        ["regions", "latency (ms)"],
        [[r, "%.0f" % ms] for r, ms in sorted(latencies.items())],
    )
    assert latencies[32] < latencies[8] < latencies[4]
